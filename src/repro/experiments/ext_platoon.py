"""Extension: platoon-aware queue prediction at the downstream signal.

Fig. 5 validates the QL model at an intersection fed by random arrivals.
The corridor's *second* signal is different: its arrivals are the pulses
the first signal releases, dispersed over the link (and thinned by the
turn ratio).  This experiment predicts signal 2's queue three ways —

* constant-rate QL (the paper's model, fed the thinned mean rate),
* platoon-aware QL (Robertson dispersion of signal 1's departures),
* the microsimulator (ground truth, phase-folded),

and reports which prediction tracks the simulator better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.metrics import root_mean_squared_error
from repro.analysis.tables import render_table
from repro.route.us25 import us25_greenville_segment
from repro.signal.propagation import (
    robertson_dispersion,
    thinned,
    upstream_departure_profile,
)
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel
from repro.sim.scenario import Us25Scenario
from repro.units import kmh_to_ms, vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class PlatoonConfig:
    """Scenario settings; demand high enough for visible platooning."""

    demand_vph: float = 500.0
    cruise_kmh: float = 63.0
    sim_duration_s: float = 3600.0
    sim_seed: int = 7
    phase_bin_s: float = 1.0


@dataclass
class PlatoonResult:
    """Phase-folded queues at signal 2 and prediction errors.

    Attributes:
        phase_s: Cycle-time axis of signal 2 (0 = its red onset).
        observed: Simulator queue (vehicles).
        constant_rate: Constant-rate QL prediction.
        platoon_aware: Platoon-aware QL prediction.
        rmse_constant: RMSE of the constant-rate prediction.
        rmse_platoon: RMSE of the platoon-aware prediction.
    """

    phase_s: np.ndarray
    observed: np.ndarray
    constant_rate: np.ndarray
    platoon_aware: np.ndarray
    rmse_constant: float
    rmse_platoon: float


def _fold(times: np.ndarray, values: np.ndarray, light, bin_s: float):
    cycle = light.cycle_s
    warm = times >= 3 * cycle
    phase = (times[warm] - light.offset_s) % cycle
    bins = np.arange(0.0, cycle + bin_s, bin_s)
    means = np.zeros(bins.size - 1)
    for i in range(bins.size - 1):
        sel = (phase >= bins[i]) & (phase < bins[i + 1])
        means[i] = values[warm][sel].mean() if sel.any() else 0.0
    return 0.5 * (bins[:-1] + bins[1:]), means


def run(config: PlatoonConfig = PlatoonConfig()) -> PlatoonResult:
    """Predict and measure signal 2's queue over a folded cycle."""
    road = us25_greenville_segment()
    s1, s2 = road.signals
    rate = vehicles_per_hour_to_per_second(config.demand_vph)
    v_min = road.v_min_at(s1.position_m)

    def ql_model(site):
        return QueueLengthModel(
            VehicleMovementModel(
                light=site.light,
                v_min_ms=v_min,
                spacing_m=site.queue_spacing_m,
                turn_ratio=site.turn_ratio,
            )
        )

    m1, m2 = ql_model(s1), ql_model(s2)
    travel_s = (s2.position_m - s1.position_m) / kmh_to_ms(config.cruise_kmh)
    departures = upstream_departure_profile(m1, rate, dt_s=0.5)
    arrivals = thinned(robertson_dispersion(departures, travel_s), s1.turn_ratio)
    mean_rate = rate * s1.turn_ratio

    # Ground truth: the microsimulator's queue at signal 2.
    scenario = Us25Scenario(
        road=road,
        arrival_rate_vph=config.demand_vph,
        warmup_s=0.0,
        seed=config.sim_seed,
    )
    sim_result = scenario.observe_queues(config.sim_duration_s)
    sim_times, sim_counts = sim_result.queue_counts[s2.position_m]
    phase, observed = _fold(sim_times, sim_counts, s2.light, config.phase_bin_s)

    constant = np.asarray(
        [m2.queue_vehicles(float(t), mean_rate) for t in phase]
    )

    # Platoon-aware: integrate with the phase-dependent arrival profile
    # and fold the steady-state cycles.  simulate()'s clock is absolute
    # (its light carries the offset), matching the profile's clock.
    n_cycles = 8
    trace = m2.simulate(n_cycles * s2.light.cycle_s, arrivals, dt_s=0.25)
    p_phase, platoon = _fold(trace.times, trace.vehicles, s2.light, config.phase_bin_s)
    platoon = np.interp(phase, p_phase, platoon)

    return PlatoonResult(
        phase_s=phase,
        observed=observed,
        constant_rate=constant,
        platoon_aware=platoon,
        rmse_constant=root_mean_squared_error(constant, observed),
        rmse_platoon=root_mean_squared_error(platoon, observed),
    )


def report(result: PlatoonResult) -> str:
    """Comparison table at cycle probes plus the RMSE verdict."""
    probes = [0.0, 10.0, 20.0, 29.0, 32.0, 35.0, 40.0, 50.0]
    rows = []
    for t in probes:
        i = int(np.argmin(np.abs(result.phase_s - t)))
        rows.append(
            (
                float(result.phase_s[i]),
                float(result.observed[i]),
                float(result.constant_rate[i]),
                float(result.platoon_aware[i]),
            )
        )
    table = render_table(
        ["cycle t (s)", "simulated (veh)", "constant-rate QL", "platoon-aware QL"],
        rows,
    )
    lines = [
        "Extension — queue prediction at the downstream signal (signal 2)",
        table,
        f"RMSE vs simulator: constant-rate {result.rmse_constant:.2f} veh, "
        f"platoon-aware {result.rmse_platoon:.2f} veh",
    ]
    return "\n".join(lines)
