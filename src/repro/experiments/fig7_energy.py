"""Fig. 7 — total energy consumption across driving profiles.

Compares, over a sweep of departure times covering a full signal cycle:

* the two human reference drives (mild / fast, Fig. 7a),
* the existing DP [2] (green windows, queues ignored),
* the proposed queue-aware DP,

all metered on their *derived* simulator trajectories.  Paper headline
numbers: proposed saves ~17.5 % vs fast driving, ~8.4 % vs mild driving
and ~5 % vs the existing DP, without increasing trip time relative to
fast driving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.metrics import savings_percent
from repro.analysis.tables import render_table
from repro.experiments.common import TripLab, TripOutcome, TripSetup


@dataclass(frozen=True)
class Fig7Config:
    """Sweep settings."""

    setup: TripSetup = field(default_factory=TripSetup)
    base_depart_s: float = 300.0
    n_departures: int = 6
    depart_step_s: float = 10.0


@dataclass
class Fig7Result:
    """Per-departure outcomes plus the aggregate table.

    Attributes:
        outcomes: One :class:`TripOutcome` per departure.
        mean_energy_mah: Profile -> mean derived net energy.
        mean_time_s: Profile -> mean derived trip time.
        savings_vs: Reference profile -> proposed's mean saving (%).
    """

    outcomes: List[TripOutcome]
    mean_energy_mah: Dict[str, float]
    mean_time_s: Dict[str, float]
    savings_vs: Dict[str, float]


def run(config: Fig7Config = Fig7Config()) -> Fig7Result:
    """Execute the four-way comparison over the departure sweep."""
    lab = TripLab(config.setup)
    outcomes = []
    for i in range(config.n_departures):
        depart = config.base_depart_s + i * config.depart_step_s
        outcomes.append(lab.run_departure(depart))
    energy = {
        name: float(np.mean([o.energy_mah(name) for o in outcomes]))
        for name in TripLab.PROFILES
    }
    times = {
        name: float(np.mean([o.duration_s(name) for o in outcomes]))
        for name in TripLab.PROFILES
    }
    savings = {
        ref: savings_percent(energy["proposed"], energy[ref])
        for ref in ("fast", "mild", "baseline_dp")
    }
    return Fig7Result(
        outcomes=outcomes, mean_energy_mah=energy, mean_time_s=times, savings_vs=savings
    )


def report(result: Fig7Result) -> str:
    """The Fig. 7b energy table plus the headline savings with CIs."""
    from repro.analysis.stats import bootstrap_paired_savings

    rows = [
        (name, result.mean_energy_mah[name], result.mean_time_s[name])
        for name in TripLab.PROFILES
    ]
    table = render_table(["profile", "mean energy (mAh)", "mean trip time (s)"], rows)
    proposed = [o.energy_mah("proposed") for o in result.outcomes]
    paper = {"fast": "17.5%", "mild": "8.4%", "baseline_dp": "~5.1%"}
    lines = [
        f"Fig. 7 — total energy over {len(result.outcomes)} departures",
        table,
    ]
    for ref in ("fast", "mild", "baseline_dp"):
        reference = [o.energy_mah(ref) for o in result.outcomes]
        interval = bootstrap_paired_savings(proposed, reference)
        lines.append(
            f"proposed saves vs {ref:<12}: {interval.estimate:5.1f}% "
            f"[{interval.lower:.1f}, {interval.upper:.1f}]"
            f"  (paper: {paper[ref]})"
        )
    return "\n".join(lines)
