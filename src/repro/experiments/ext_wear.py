"""Extension: battery wear across driving profiles.

The paper's introduction motivates velocity optimization with battery
longevity ("frequent charging/discharging reduces battery lifetime") but
never quantifies it.  This extension does: the same four profiles from
the Fig. 7 comparison are scored with the throughput-based wear model —
stop-and-go cycling shows up as Ah throughput and high-C stress even when
the net energy looks similar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.common import TripLab, TripSetup
from repro.vehicle.wear import BatteryWearModel, WearReport


@dataclass(frozen=True)
class WearConfig:
    """Sweep settings (mirrors the Fig. 7 protocol)."""

    setup: TripSetup = field(default_factory=TripSetup)
    base_depart_s: float = 300.0
    n_departures: int = 3
    depart_step_s: float = 20.0


@dataclass
class WearResult:
    """Mean wear figures per profile.

    Attributes:
        reports: Profile -> mean per-trip wear metrics.
        trips_to_80pct: Profile -> trips until 20 % of cycle life is gone.
    """

    reports: Dict[str, WearReport]
    trips_to_80pct: Dict[str, float]


def run(config: WearConfig = WearConfig()) -> WearResult:
    """Assess wear of the four Fig. 7 profiles over a departure sweep."""
    lab = TripLab(config.setup)
    wear_model = BatteryWearModel()
    accum: Dict[str, List[WearReport]] = {name: [] for name in TripLab.PROFILES}
    for i in range(config.n_departures):
        depart = config.base_depart_s + i * config.depart_step_s
        outcome = lab.run_departure(depart)
        for name in TripLab.PROFILES:
            accum[name].append(wear_model.assess_trace(outcome.traces[name]))

    reports: Dict[str, WearReport] = {}
    trips: Dict[str, float] = {}
    for name, items in accum.items():
        mean = WearReport(
            throughput_ah=float(np.mean([r.throughput_ah for r in items])),
            stress_weighted_ah=float(np.mean([r.stress_weighted_ah for r in items])),
            equivalent_full_cycles=float(
                np.mean([r.equivalent_full_cycles for r in items])
            ),
            life_fraction=float(np.mean([r.life_fraction for r in items])),
            peak_c_rate=float(np.max([r.peak_c_rate for r in items])),
        )
        reports[name] = mean
        trips[name] = 0.2 / mean.life_fraction if mean.life_fraction > 0 else float("inf")
    return WearResult(reports=reports, trips_to_80pct=trips)


def report(result: WearResult) -> str:
    """Wear table: throughput, stress, life consumption per trip."""
    rows = []
    for name in TripLab.PROFILES:
        rep = result.reports[name]
        rows.append(
            (
                name,
                rep.throughput_ah,
                rep.peak_c_rate,
                rep.life_fraction_ppm,
                result.trips_to_80pct[name],
            )
        )
    table = render_table(
        [
            "profile",
            "throughput (Ah)",
            "peak C-rate",
            "life/trip (ppm)",
            "trips to 80% SoH",
        ],
        rows,
    )
    gentlest = min(result.reports, key=lambda n: result.reports[n].life_fraction)
    return (
        "Extension — battery wear per trip (throughput model)\n"
        + table
        + f"\ngentlest profile: {gentlest}"
    )
