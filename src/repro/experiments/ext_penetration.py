"""Extension: optimized-EV penetration study.

The paper optimizes one EV against a background of human traffic.  What
happens as more of the fleet runs the optimizer?  This extension places
several EVs in *one* simulation — a fraction driving queue-aware plans,
the rest driving like the fast human reference — and measures each
group's energy.  Two effects compose: optimized vehicles save energy
individually, and (at higher penetration) they smooth the platoon ahead
of the unoptimized vehicles too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.sim.car_following import KraussModel
from repro.sim.scenario import profile_speed_command
from repro.sim.simulator import CorridorSimulator
from repro.traffic.arrival import PoissonArrivalProcess
from repro.traffic.volume import VolumeSeries
from repro.units import SECONDS_PER_HOUR, vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class PenetrationConfig:
    """Study settings."""

    n_evs: int = 8
    ev_headway_s: float = 25.0
    penetrations: Tuple[float, ...] = (0.0, 0.5, 1.0)
    background_vph: float = 200.0
    first_depart_s: float = 300.0
    trip_cap_s: float = 290.0
    seed: int = 9


@dataclass
class PenetrationResult:
    """Per-penetration aggregate rows.

    Attributes:
        rows: (penetration, mean optimized energy mAh or nan, mean
            unoptimized energy mAh or nan, fleet mean energy mAh).
    """

    rows: List[Tuple[float, float, float, float]]


def _fast_command(road):
    def command(position_m: float) -> float:
        clamped = min(max(position_m, 0.0), road.length_m)
        return road.v_max_at(clamped)

    return command


def run(config: PenetrationConfig = PenetrationConfig()) -> PenetrationResult:
    """Run the EV fleet at each penetration level."""
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(config.background_vph),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
    )
    horizon = config.first_depart_s + config.n_evs * config.ev_headway_s + 900.0
    hours = int(np.ceil(horizon / SECONDS_PER_HOUR)) + 1
    background = PoissonArrivalProcess(
        VolumeSeries(np.full(hours, config.background_vph)), seed=config.seed
    ).sample(0.0, horizon)

    rows: List[Tuple[float, float, float, float]] = []
    for penetration in config.penetrations:
        sim = CorridorSimulator(road, arrivals_s=background, seed=config.seed + 1)
        optimized_ids: List[str] = []
        human_ids: List[str] = []
        for k in range(config.n_evs):
            depart = config.first_depart_s + k * config.ev_headway_s
            vehicle_id = f"ev{k}"
            if k < round(penetration * config.n_evs):
                cap = max(config.trip_cap_s, planner.min_trip_time(depart) + 1.0)
                solution = planner.plan(start_time_s=depart, max_trip_time_s=cap)
                sim.schedule_ev(
                    depart_s=depart,
                    target_speed_at=profile_speed_command(solution.profile),
                    vehicle_id=vehicle_id,
                )
                optimized_ids.append(vehicle_id)
            else:
                sim.schedule_ev(
                    depart_s=depart,
                    target_speed_at=_fast_command(road),
                    vehicle_id=vehicle_id,
                )
                human_ids.append(vehicle_id)
        result = sim.run_until_ev_done(hard_limit_s=horizon)

        def group_mean(ids: List[str]) -> float:
            if not ids:
                return float("nan")
            return float(
                np.mean([result.ev_traces[i].energy().net_mah for i in ids])
            )

        opt_mean = group_mean(optimized_ids)
        human_mean = group_mean(human_ids)
        fleet_mean = group_mean(optimized_ids + human_ids)
        rows.append((penetration, opt_mean, human_mean, fleet_mean))
    return PenetrationResult(rows=rows)


def report(result: PenetrationResult) -> str:
    """Penetration sweep table."""
    table = render_table(
        [
            "penetration",
            "optimized E (mAh)",
            "unoptimized E (mAh)",
            "fleet E (mAh)",
        ],
        [(f"{p:.0%}", o, h, f) for p, o, h, f in result.rows],
    )
    fleet = [r[3] for r in result.rows]
    trend = "decreases" if fleet[-1] < fleet[0] else "does not decrease"
    return (
        "Extension — optimized-EV penetration study\n"
        + table
        + f"\nfleet mean energy {trend} with penetration "
        f"({fleet[0]:.0f} -> {fleet[-1]:.0f} mAh)"
    )
