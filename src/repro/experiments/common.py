"""Shared setup for the velocity-optimization experiments (Figs. 6-8).

The trip protocol mirrors Section III-B-3:

1. Synthesize the two human reference drives (mild / fast) for a departure.
2. Budget the planners with the fast drive's trip time — "without
   increasing trip time" — relaxed to the fastest *feasible* trip when the
   signal windows make the human's lucky threading unattainable.
3. Plan with the baseline DP [2] (green windows) and the proposed
   queue-aware DP (``T_q`` windows).
4. Play every profile through the corridor simulator and meter the
   *derived* trajectories with the EV energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.engine import ArtifactStore
from repro.core.planner import BaselineDpPlanner, PlannerConfig, QueueAwareDpPlanner
from repro.core.profile import TimedTrace
from repro.route.road import RoadSegment
from repro.route.us25 import us25_greenville_segment
from repro.sim.scenario import Us25Scenario
from repro.trace.driver import fast_driver, mild_driver, synthesize_trace
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class TripSetup:
    """Configuration of one trip-comparison experiment.

    Attributes:
        arrival_rate_vph: Background volume at the corridor entry.
        seed: Simulation seed.
        queue_margin_s: Arrival-window safety margin for the proposed
            planner (absorbs the queue-discharge startup wave the VM model
            idealizes away).
        baseline_margin_s: Margin for the baseline planner (the prior art
            targets raw green windows, so zero).
    """

    arrival_rate_vph: float = 300.0
    seed: int = 7
    queue_margin_s: float = 2.0
    baseline_margin_s: float = 0.0


@dataclass
class TripOutcome:
    """Derived traces of the four compared profiles for one departure."""

    depart_s: float
    trip_cap_s: float
    traces: Dict[str, TimedTrace] = field(default_factory=dict)
    signal_stops: Dict[str, int] = field(default_factory=dict)

    def energy_mah(self, name: str) -> float:
        """Net metered energy of one profile (mAh)."""
        return self.traces[name].energy().net_mah

    def duration_s(self, name: str) -> float:
        """Derived trip duration of one profile (s)."""
        return self.traces[name].duration_s


class TripLab:
    """Factory running the four-profile comparison for any departure."""

    PROFILES = ("mild", "fast", "baseline_dp", "proposed")

    def __init__(
        self,
        setup: TripSetup = TripSetup(),
        road: Optional[RoadSegment] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.setup = setup
        self.road = road if road is not None else us25_greenville_segment()
        rate = vehicles_per_hour_to_per_second(setup.arrival_rate_vph)
        # Both planners use the same grid; sharing a store means one
        # corridor build for the pair (window margins are solve-time
        # inputs, not artifact inputs).
        self.store = store if store is not None else ArtifactStore()
        self.proposed = QueueAwareDpPlanner(
            self.road,
            arrival_rates=rate,
            config=PlannerConfig(window_margin_s=setup.queue_margin_s),
            store=self.store,
        )
        self.baseline = BaselineDpPlanner(
            self.road,
            config=PlannerConfig(window_margin_s=setup.baseline_margin_s),
            store=self.store,
        )

    def _scenario(self, depart_s: float, ev_car_following=None) -> Us25Scenario:
        return Us25Scenario(
            road=self.road,
            arrival_rate_vph=self.setup.arrival_rate_vph,
            warmup_s=depart_s,
            seed=self.setup.seed,
            ev_car_following=ev_car_following,
        )

    def run_departure(self, depart_s: float) -> TripOutcome:
        """Full four-way comparison for one departure time."""
        mild = synthesize_trace(
            self.road, mild_driver(), self.setup.arrival_rate_vph, depart_s, self.setup.seed
        )
        fast = synthesize_trace(
            self.road, fast_driver(), self.setup.arrival_rate_vph, depart_s, self.setup.seed
        )
        cap = max(
            fast.duration_s,
            self.proposed.min_trip_time(depart_s) + 1.0,
            self.baseline.min_trip_time(depart_s) + 1.0,
        )
        outcome = TripOutcome(depart_s=depart_s, trip_cap_s=cap)
        outcome.traces["mild"] = mild
        outcome.traces["fast"] = fast
        outcome.signal_stops["mild"] = -1  # not tracked for human syntheses
        outcome.signal_stops["fast"] = -1

        for name, planner in (("baseline_dp", self.baseline), ("proposed", self.proposed)):
            solution = planner.plan(start_time_s=depart_s, max_trip_time_s=cap)
            result = self._scenario(depart_s).drive(solution.profile, depart_s=depart_s)
            outcome.traces[name] = result.ev_trace
            outcome.signal_stops[name] = result.ev_signal_stops(self.road)
        return outcome
