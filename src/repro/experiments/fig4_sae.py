"""Fig. 4 — traffic-volume prediction with the SAE model.

Trains the stacked autoencoder on ~3 months of hourly volumes and
evaluates on the final week, reporting per-day MRE and RMSE (Fig. 4b).
The paper's acceptance bar: every day's MRE below 10 %.  Baseline
predictors (historical average, last value) are reported for context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.metrics import (
    mean_relative_error,
    per_day_prediction_errors,
    root_mean_squared_error,
)
from repro.analysis.tables import render_table
from repro.traffic.baselines import HistoricalAveragePredictor, LastValuePredictor
from repro.traffic.dataset import train_test_split_by_hour
from repro.traffic.sae import SAEPredictor
from repro.traffic.volume import VolumeGenerator


@dataclass(frozen=True)
class Fig4Config:
    """Data and model settings for the prediction experiment."""

    total_days: int = 91
    test_days: int = 7
    window_hours: int = 12
    data_seed: int = 7
    model_seed: int = 1
    hidden_sizes: tuple = (32, 16)
    pretrain_epochs: int = 30
    finetune_epochs: int = 300


@dataclass
class Fig4Result:
    """Prediction-quality summary.

    Attributes:
        per_day: Day label -> (MRE fraction, RMSE vehicles/hour) for SAE.
        overall: Model name -> (MRE fraction, RMSE vehicles/hour).
        test_volumes: The true held-out week (vehicles/hour).
        sae_predictions: SAE forecasts for the held-out week.
    """

    per_day: List[Tuple[str, float, float]]
    overall: Dict[str, Tuple[float, float]]
    test_volumes: np.ndarray
    sae_predictions: np.ndarray


def run(config: Fig4Config = Fig4Config()) -> Fig4Result:
    """Generate data, train the predictors and collect the error tables."""
    series = VolumeGenerator(seed=config.data_seed).generate(config.total_days)
    train, test = train_test_split_by_hour(
        series, test_hours=config.test_days * 24, window=config.window_hours
    )
    sae = SAEPredictor(
        hidden_sizes=config.hidden_sizes,
        pretrain_epochs=config.pretrain_epochs,
        finetune_epochs=config.finetune_epochs,
        seed=config.model_seed,
    ).fit(train.features, train.targets)

    real = test.denormalize(test.targets)
    predictions = {
        "SAE": test.denormalize(sae.predict(test.features)),
        "historical-average": test.denormalize(
            HistoricalAveragePredictor().fit(train).predict(test)
        ),
        "last-value": test.denormalize(LastValuePredictor().fit(train).predict(test)),
    }
    overall = {
        name: (
            mean_relative_error(pred, real, floor=20.0),
            root_mean_squared_error(pred, real),
        )
        for name, pred in predictions.items()
    }
    per_day = per_day_prediction_errors(
        predictions["SAE"], real, test.target_hours, floor=20.0
    )
    return Fig4Result(
        per_day=per_day,
        overall=overall,
        test_volumes=real,
        sae_predictions=predictions["SAE"],
    )


def report(result: Fig4Result) -> str:
    """Per-day SAE errors (Fig. 4b) and the model comparison."""
    day_rows = [(d, mre * 100.0, rmse) for d, mre, rmse in result.per_day]
    day_table = render_table(["day", "MRE (%)", "RMSE (veh/h)"], day_rows)
    model_rows = [
        (name, mre * 100.0, rmse) for name, (mre, rmse) in sorted(result.overall.items())
    ]
    model_table = render_table(["model", "MRE (%)", "RMSE (veh/h)"], model_rows)
    worst = max(mre for _, mre, _ in result.per_day)
    verdict = f"worst SAE day MRE {worst * 100.0:.2f}% (paper bar: < 10%)"
    return (
        "Fig. 4 — SAE traffic-volume prediction (held-out week)\n"
        + day_table
        + "\n\n"
        + model_table
        + "\n"
        + verdict
    )
