"""Fig. 6 — planned versus derived velocity profiles in the simulator.

The paper feeds both DP plans into SUMO via TraCI and shows that the
*existing* DP's derived profile stops at the first signal and brakes hard
at the second (its plan arrived on green but behind a discharging queue),
while the *proposed* DP's derived profile glides through both (Fig. 6b).

We reproduce the phenomenon with time-minimal plans: the fastest
green-window plan arrives at the green onset — exactly where the queue is
still discharging — whereas the fastest queue-aware plan targets ``T_q``.
The experiment scans departures within one cycle and reports the first
where the contrast materializes, plus the full planned/derived traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.engine import ArtifactStore
from repro.core.planner import BaselineDpPlanner, PlannerConfig, QueueAwareDpPlanner
from repro.core.profile import TimedTrace
from repro.route.us25 import us25_greenville_segment
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class Fig6Config:
    """Scenario settings for the planned-vs-derived comparison."""

    arrival_rate_vph: float = 300.0
    base_depart_s: float = 300.0
    scan_step_s: float = 5.0
    seed: int = 7
    queue_margin_s: float = 2.0
    slow_speed_ms: float = 4.0


@dataclass
class Fig6Result:
    """Derived-trace comparison at the chosen departure.

    Attributes:
        depart_s: Departure where the contrast shows.
        derived: Profile name -> derived simulator trace.
        planned_arrivals: Profile name -> planned signal arrival times.
        min_speed_near_signals: Profile name -> minimum derived speed
            within 150 m upstream of any signal (m/s).
        signal_stops: Profile name -> full stops near signals.
        durations: Profile name -> derived trip time (s).
    """

    depart_s: float
    derived: Dict[str, TimedTrace]
    planned_arrivals: Dict[str, Dict[float, float]]
    min_speed_near_signals: Dict[str, float]
    signal_stops: Dict[str, int]
    durations: Dict[str, float]


def _min_speed_near_signals(trace: TimedTrace, signal_positions, upstream_m=150.0) -> float:
    worst = np.inf
    for pos in signal_positions:
        sel = (trace.positions_m >= pos - upstream_m) & (trace.positions_m <= pos)
        if sel.any():
            worst = min(worst, float(trace.speeds_ms[sel].min()))
    return worst


def run(config: Fig6Config = Fig6Config()) -> Fig6Result:
    """Scan departures and return the first illustrative contrast.

    Falls back to the departure with the largest baseline-minus-proposed
    slowdown when no departure produces a full baseline stop.
    """
    road = us25_greenville_segment()
    rate = vehicles_per_hour_to_per_second(config.arrival_rate_vph)
    store = ArtifactStore()
    baseline = BaselineDpPlanner(
        road, config=PlannerConfig(window_margin_s=0.0), store=store
    )
    proposed = QueueAwareDpPlanner(
        road,
        arrival_rates=rate,
        config=PlannerConfig(window_margin_s=config.queue_margin_s),
        store=store,
    )
    signal_positions = road.signal_positions()

    best: Optional[Fig6Result] = None
    best_gap = -np.inf
    cycle = road.signals[0].light.cycle_s
    offsets = np.arange(0.0, cycle, config.scan_step_s)
    for offset in offsets:
        depart = config.base_depart_s + float(offset)
        candidate = _run_single(config, road, rate, baseline, proposed, depart)
        if candidate is None:
            continue
        gap = (
            candidate.min_speed_near_signals["proposed"]
            - candidate.min_speed_near_signals["baseline_dp"]
        )
        baseline_disturbed = (
            candidate.signal_stops["baseline_dp"] > 0
            or candidate.min_speed_near_signals["baseline_dp"] < config.slow_speed_ms
        )
        proposed_clean = (
            candidate.signal_stops["proposed"] == 0
            and candidate.min_speed_near_signals["proposed"] >= config.slow_speed_ms
        )
        if baseline_disturbed and proposed_clean:
            return candidate
        if gap > best_gap:
            best, best_gap = candidate, gap
    if best is None:
        raise RuntimeError("no departure produced feasible plans for Fig. 6")
    return best


def _run_single(config, road, rate, baseline, proposed, depart) -> Optional[Fig6Result]:
    from repro.errors import InfeasibleProblemError

    try:
        sol_b = baseline.plan(start_time_s=depart, minimize="time")
        sol_p = proposed.plan(start_time_s=depart, minimize="time")
    except InfeasibleProblemError:
        return None
    scenario = Us25Scenario(
        road=road,
        arrival_rate_vph=config.arrival_rate_vph,
        warmup_s=depart,
        seed=config.seed,
    )
    derived: Dict[str, TimedTrace] = {}
    arrivals: Dict[str, Dict[float, float]] = {}
    stops: Dict[str, int] = {}
    for name, sol in (("baseline_dp", sol_b), ("proposed", sol_p)):
        result = scenario.drive(sol.profile, depart_s=depart)
        derived[name] = result.ev_trace
        arrivals[name] = sol.signal_arrivals
        stops[name] = result.ev_signal_stops(road)
    signal_positions = road.signal_positions()
    return Fig6Result(
        depart_s=depart,
        derived=derived,
        planned_arrivals=arrivals,
        min_speed_near_signals={
            name: _min_speed_near_signals(tr, signal_positions) for name, tr in derived.items()
        },
        signal_stops=stops,
        durations={name: tr.duration_s for name, tr in derived.items()},
    )


def report(result: Fig6Result) -> str:
    """Summarize the contrast the paper's Fig. 6 illustrates."""
    from repro.analysis.ascii_plot import plot_speed_profiles

    rows = []
    for name in ("baseline_dp", "proposed"):
        rows.append(
            (
                name,
                result.durations[name],
                result.signal_stops[name],
                result.min_speed_near_signals[name] * 3.6,
            )
        )
    table = render_table(
        ["profile", "derived time (s)", "signal stops", "min v near signals (km/h)"], rows
    )
    chart = plot_speed_profiles(
        {
            name: (trace.positions_m, trace.speeds_ms)
            for name, trace in result.derived.items()
        }
    )
    lines = [
        f"Fig. 6 — planned vs derived profiles (departure t = {result.depart_s:.0f} s)",
        table,
        "",
        chart,
        "",
        "expected shape: the baseline DP is slowed/stopped by the residual queue;",
        "the proposed plan crosses both signals without dropping below cruise speed.",
    ]
    return "\n".join(lines)
