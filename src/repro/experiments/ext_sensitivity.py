"""Extension: robustness of the queue-aware plan to forecast error.

The system plans against *predicted* arrival rates; the paper's Section II
names accurate prediction as "the main challenge".  This extension
quantifies how much SAE-level misprediction actually matters: plans are
computed with a biased rate ``(1 + err) * V_in`` and then audited against
the queue-free windows of the *true* rate.  The queue-clear time ``t_star``
moves only a few seconds across a wide rate range, so moderate forecast
error is absorbed by the planner's safety margin — which this experiment
makes precise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.engine import ArtifactStore, StoreStats
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import InfeasibleProblemError
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class SensitivityConfig:
    """Error sweep settings."""

    true_rate_vph: float = 300.0
    errors: Tuple[float, ...] = (-0.5, -0.25, -0.10, 0.0, 0.10, 0.25, 0.5)
    departures: Tuple[float, ...] = (0.0, 20.0, 40.0)
    margin_s: float = 2.0
    trip_cap_s: float = 290.0


@dataclass
class SensitivityResult:
    """Outcome per forecast-error level.

    Attributes:
        rows: (error, t_star shift in s, fraction of arrivals still inside
            the true queue-free windows, mean planned energy mAh).
        store: Artifact-store counters of the sweep.  Forecast error
            perturbs only the arrival rate — not the corridor — so the
            whole sweep resolves to one digest: one build, and a hit for
            every other planner in the sweep.
    """

    rows: List[Tuple[float, float, float, float]]
    store: Optional[StoreStats] = None


def run(
    config: SensitivityConfig = SensitivityConfig(),
    store: Optional[ArtifactStore] = None,
) -> SensitivityResult:
    """Plan with biased rates, audit against true-rate windows."""
    road = us25_greenville_segment()
    store = store if store is not None else ArtifactStore()
    true_rate = vehicles_per_hour_to_per_second(config.true_rate_vph)
    truth_planner = QueueAwareDpPlanner(
        road,
        arrival_rates=true_rate,
        config=PlannerConfig(window_margin_s=0.0),
        store=store,
    )
    true_models = {
        pos: truth_planner.queue_model(pos) for pos in road.signal_positions()
    }
    baseline_t_star = {
        pos: model.clear_time(true_rate) for pos, model in true_models.items()
    }

    rows: List[Tuple[float, float, float, float]] = []
    for err in config.errors:
        biased = true_rate * (1.0 + err)
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=biased,
            config=PlannerConfig(window_margin_s=config.margin_s),
            store=store,
        )
        shifts = []
        for pos, model in planner._queue_models.items():
            t_star = model.clear_time(biased)
            if t_star is not None and baseline_t_star[pos] is not None:
                shifts.append(t_star - baseline_t_star[pos])
        mean_shift = float(np.mean(shifts)) if shifts else float("nan")

        hits = 0
        total = 0
        energies = []
        for depart in config.departures:
            try:
                solution = planner.plan(
                    start_time_s=depart, max_trip_time_s=config.trip_cap_s
                )
            except InfeasibleProblemError:
                continue
            energies.append(solution.energy_mah)
            for pos, arrival in solution.signal_arrivals.items():
                total += 1
                true_windows = true_models[pos].empty_windows(
                    depart, 600.0, true_rate
                )
                if any(w.contains(arrival) for w in true_windows):
                    hits += 1
        hit_frac = hits / total if total else 0.0
        mean_energy = float(np.mean(energies)) if energies else float("nan")
        rows.append((err, mean_shift, hit_frac, mean_energy))
    return SensitivityResult(rows=rows, store=store.stats())


def report(result: SensitivityResult) -> str:
    """Sensitivity table: forecast error vs window integrity."""
    table = render_table(
        [
            "rate error",
            "t* shift (s)",
            "true-window hit rate",
            "mean energy (mAh)",
        ],
        [(f"{e:+.0%}", s, h, m) for e, s, h, m in result.rows],
    )
    zero = next(r for r in result.rows if r[0] == 0.0)
    sae_band = [r for r in result.rows if abs(r[0]) <= 0.10]
    verdict = (
        f"within SAE-level error (+-10%): worst hit rate "
        f"{min(r[2] for r in sae_band):.2f} (perfect = 1.00)"
    )
    text = (
        "Extension — sensitivity of T_q targeting to arrival-rate forecast error\n"
        + table
        + "\n"
        + verdict
    )
    if result.store is not None:
        text += f"\nartifact store: {result.store.summary()}"
    return text
