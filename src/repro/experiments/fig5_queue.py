"""Fig. 5 — traffic dynamics over one signal cycle: VM and QL models.

Reproduces both panels for the paper's measured second intersection
(d = 8.5 m, gamma = 76.36 %, V_in = 153 veh/h, 30 s red / 30 s green):

* Fig. 5a — vehicle leaving rate: the proposed VM model (acceleration
  transient, Eq. 4-5) versus the prior-art instant-discharge model [9].
  The VM curve takes visibly longer to reach the arrival rate.
* Fig. 5b — queue length across the cycle: proposed QL model (Eq. 6) and
  baseline QL model versus "real" data.  The paper's real data came from
  roadside observation; ours comes from the microsimulator, phase-folded
  over many cycles.  We fold the *first* signal's queue: its arrivals are
  the raw Poisson entry stream at the configured ``V_in``, whereas the
  second signal only sees what the first releases (platooned and thinned
  by the turn ratio), which would not match the constant-rate QL setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.metrics import root_mean_squared_error
from repro.analysis.tables import render_table
from repro.route.us25 import us25_greenville_segment
from repro.signal.light import TrafficLight
from repro.signal.queue import BaselineQueueModel, QueueLengthModel
from repro.signal.vm import InstantDischargeModel, VehicleMovementModel
from repro.sim.scenario import Us25Scenario
from repro.units import kmh_to_ms, vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class Fig5Config:
    """Measured parameters of the second US-25 signal (Section III-B-2)."""

    arrival_rate_vph: float = 153.0
    red_s: float = 30.0
    green_s: float = 30.0
    spacing_m: float = 8.5
    turn_ratio: float = 0.7636
    v_min_kmh: float = 40.0
    a_max_ms2: float = 2.5
    sim_duration_s: float = 3600.0
    sim_seed: int = 7
    phase_bin_s: float = 1.0


@dataclass
class Fig5Result:
    """Model curves and simulator ground truth over one folded cycle.

    Attributes:
        phase_s: Cycle time axis (0 = red onset).
        vm_leaving_rate: Proposed VM leaving rate (veh/s).
        instant_leaving_rate: Prior-art leaving rate (veh/s).
        ql_proposed: Proposed QL queue size (vehicles).
        ql_baseline: Baseline QL queue size (vehicles).
        ql_observed: Phase-folded mean simulated queue size (vehicles).
        clear_time_proposed_s: Proposed model's ``t_star``.
        clear_time_baseline_s: Baseline model's ``t_star``.
        rmse_proposed: RMSE of proposed QL vs observed.
        rmse_baseline: RMSE of baseline QL vs observed.
    """

    phase_s: np.ndarray
    vm_leaving_rate: np.ndarray
    instant_leaving_rate: np.ndarray
    ql_proposed: np.ndarray
    ql_baseline: np.ndarray
    ql_observed: np.ndarray
    clear_time_proposed_s: float
    clear_time_baseline_s: float
    rmse_proposed: float
    rmse_baseline: float


def _fold_observed_queue(
    config: Fig5Config,
) -> Tuple[np.ndarray, np.ndarray]:
    """Phase-folded mean queue at the second signal from the simulator."""
    road = us25_greenville_segment(
        red_s=config.red_s, green_s=config.green_s, v_min_kmh=config.v_min_kmh
    )
    scenario = Us25Scenario(
        road=road,
        arrival_rate_vph=config.arrival_rate_vph,
        warmup_s=0.0,
        seed=config.sim_seed,
    )
    result = scenario.observe_queues(config.sim_duration_s)
    site = road.signals[0]
    times, counts = result.queue_counts[site.position_m]
    # Skip the first two cycles (cold start), fold the rest on the cycle.
    cycle = site.light.cycle_s
    warm = times >= 2 * cycle
    phase = (times[warm] - site.light.offset_s) % cycle
    bins = np.arange(0.0, cycle + config.phase_bin_s, config.phase_bin_s)
    means = np.zeros(bins.size - 1)
    for i in range(bins.size - 1):
        sel = (phase >= bins[i]) & (phase < bins[i + 1])
        means[i] = counts[warm][sel].mean() if sel.any() else 0.0
    centers = 0.5 * (bins[:-1] + bins[1:])
    return centers, means


def run(config: Fig5Config = Fig5Config()) -> Fig5Result:
    """Evaluate both discharge/queue models and fold the simulator truth."""
    light = TrafficLight(red_s=config.red_s, green_s=config.green_s)
    v_min = kmh_to_ms(config.v_min_kmh)
    vm = VehicleMovementModel(
        light=light,
        v_min_ms=v_min,
        a_max_ms2=config.a_max_ms2,
        spacing_m=config.spacing_m,
        turn_ratio=config.turn_ratio,
    )
    instant = InstantDischargeModel(
        light=light, v_min_ms=v_min, spacing_m=config.spacing_m, turn_ratio=config.turn_ratio
    )
    proposed = QueueLengthModel(vm)
    baseline = BaselineQueueModel(
        light, v_min_ms=v_min, spacing_m=config.spacing_m, turn_ratio=config.turn_ratio
    )
    rate = vehicles_per_hour_to_per_second(config.arrival_rate_vph)

    phase, observed = _fold_observed_queue(config)
    vm_rate = np.asarray(vm.leaving_rate(phase))
    instant_rate = np.asarray(instant.leaving_rate(phase))
    ql_prop = np.asarray([proposed.queue_vehicles(float(t), rate) for t in phase])
    ql_base = np.asarray([baseline.queue_vehicles(float(t), rate) for t in phase])

    return Fig5Result(
        phase_s=phase,
        vm_leaving_rate=vm_rate,
        instant_leaving_rate=instant_rate,
        ql_proposed=ql_prop,
        ql_baseline=ql_base,
        ql_observed=observed,
        clear_time_proposed_s=float(proposed.clear_time(rate)),
        clear_time_baseline_s=float(baseline.clear_time(rate)),
        rmse_proposed=root_mean_squared_error(ql_prop, observed),
        rmse_baseline=root_mean_squared_error(ql_base, observed),
    )


def report(result: Fig5Result) -> str:
    """Queue-dynamics summary for both panels."""
    probes = [0.0, 15.0, 30.0, 32.0, 34.0, 36.0, 40.0, 50.0]
    rows = []
    for t in probes:
        i = int(np.argmin(np.abs(result.phase_s - t)))
        rows.append(
            (
                float(result.phase_s[i]),
                float(result.vm_leaving_rate[i]),
                float(result.instant_leaving_rate[i]),
                float(result.ql_proposed[i]),
                float(result.ql_baseline[i]),
                float(result.ql_observed[i]),
            )
        )
    table = render_table(
        [
            "cycle t (s)",
            "VM V_out (veh/s)",
            "[9] V_out (veh/s)",
            "QL prop (veh)",
            "QL base (veh)",
            "QL sim (veh)",
        ],
        rows,
    )
    lines = [
        "Fig. 5 — traffic dynamics over one signal cycle (signal-2 parameters)",
        table,
        f"queue-clear time t*: proposed {result.clear_time_proposed_s:.1f} s, "
        f"baseline {result.clear_time_baseline_s:.1f} s (green opens at 30 s)",
        f"QL-vs-simulated RMSE: proposed {result.rmse_proposed:.2f} veh, "
        f"baseline {result.rmse_baseline:.2f} veh",
    ]
    return "\n".join(lines)
