"""Run the full evaluation: every figure of the paper, one report each.

Installed as the ``repro-experiments`` console script::

    repro-experiments            # run everything
    repro-experiments fig4 fig7  # run a subset
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.analysis.tables import render_table
from repro.experiments import (
    ext_closed_loop,
    ext_guard,
    ext_pareto,
    ext_penetration,
    ext_platoon,
    ext_resilience,
    ext_scenarios,
    ext_sensitivity,
    ext_uncertainty,
    ext_wear,
    fig3_energy_map,
    fig4_sae,
    fig5_queue,
    fig6_sumo,
    fig7_energy,
    fig8_time,
)

#: Experiment id -> (run, report) pair.  ``fig*`` entries reproduce the
#: paper's figures; ``ext-*`` entries are extensions the paper motivates
#: but does not evaluate.
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "fig3": (fig3_energy_map.run, fig3_energy_map.report),
    "fig4": (fig4_sae.run, fig4_sae.report),
    "fig5": (fig5_queue.run, fig5_queue.report),
    "fig6": (fig6_sumo.run, fig6_sumo.report),
    "fig7": (fig7_energy.run, fig7_energy.report),
    "fig8": (fig8_time.run, fig8_time.report),
    "ext-wear": (ext_wear.run, ext_wear.report),
    "ext-sensitivity": (ext_sensitivity.run, ext_sensitivity.report),
    "ext-closedloop": (ext_closed_loop.run, ext_closed_loop.report),
    "ext-penetration": (ext_penetration.run, ext_penetration.report),
    "ext-pareto": (ext_pareto.run, ext_pareto.report),
    "ext-platoon": (ext_platoon.run, ext_platoon.report),
    "ext-resilience": (ext_resilience.run, ext_resilience.report),
    "ext-uncertainty": (ext_uncertainty.run, ext_uncertainty.report),
    "ext-guard": (ext_guard.run, ext_guard.report),
    "ext-scenarios": (ext_scenarios.run, ext_scenarios.report),
}


def run_experiment(name: str) -> str:
    """Run one experiment by id and return its rendered report."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    run, report = EXPERIMENTS[name]
    return report(run())


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="collect observability metrics across the run and write the "
        "JSON report to PATH",
    )
    args = parser.parse_args(argv)
    registry = obs.get_registry()
    if args.metrics is not None:
        registry.enabled = True
        registry.reset()
    names = args.experiments or list(EXPERIMENTS)
    timings: List[Tuple[str, float]] = []
    for name in names:
        started = time.perf_counter()
        print("=" * 72)
        try:
            print(run_experiment(name))
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        timings.append((name, elapsed))
        print(f"[{name} completed in {elapsed:.1f} s]")
    if timings:
        print("=" * 72)
        print("per-figure timing report")
        total = sum(elapsed for _, elapsed in timings)
        rows = [
            [name, elapsed, 100.0 * elapsed / total if total else 0.0]
            for name, elapsed in timings
        ]
        rows.append(["total", total, 100.0])
        print(render_table(["experiment", "runtime_s", "share_pct"], rows))
    if args.metrics is not None:
        try:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(obs.to_json(registry) + "\n")
        except OSError as exc:
            print(
                f"could not write metrics to {args.metrics!r}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"metrics written to {args.metrics}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
