"""Extension: the guard layer under corrupted inputs and degenerate plans.

The paper's pipeline trusts its inputs end to end: road definitions,
trace CSVs, volume counts and — above all — the plans the cloud returns.
This extension attacks both trust boundaries deterministically and
measures what the ``repro.guard`` layer does about it:

* **Corrupted-input campaign** — a corpus of systematically corrupted
  road dicts, trace rows and volume rows is pushed through the input
  contracts, once strict and once in repair mode.  Every corruption must
  be rejected with a typed error in strict mode; repair mode must either
  salvage the input (reporting what changed) or reject it — never accept
  it silently.

* **Degenerate-plan campaign** — the closed loop drives with a cloud
  planner wrapped in a :class:`~repro.resilience.faults.DegeneratePlanner`
  (NaN speeds, envelope-breaking accelerations, arrivals outside green
  windows) at increasing corruption rates, with a
  :class:`~repro.guard.supervisor.SafetySupervisor` installed in the
  degradation ladder.  Expected shape: at rate 0 the guard is invisible
  (all plans pass); as the rate grows, corrupted cloud plans are repaired
  or rejected onto lower ladder tiers — but every commanded plan is
  valid and every trip completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import InputValidationError
from repro.guard.contracts import (
    validate_road_dict,
    validate_trace_rows,
    validate_volume_rows,
)
from repro.guard.plan_check import PlanValidator
from repro.guard.supervisor import SafetySupervisor
from repro.resilience.client import ResilientPlanClient
from repro.resilience.faults import PlanFaultModel, DegeneratePlanner, hash_uniform
from repro.resilience.ladder import TIERS, DegradationLadder
from repro.route.io import road_to_dict
from repro.route.us25 import us25_greenville_segment
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class GuardConfig:
    """Guard campaign settings.

    Attributes:
        corruption_rates: Plan-corruption probabilities to sweep.
        traffic_vph: Background traffic level.
        depart_s: EV departure time (and scenario warmup).
        seeds: Scenario seeds per rate; every drive must complete.
        trip_cap_s: Trip-time budget handed to the planner.
        replan_interval_s: Closed-loop replanning period.
        fault_seed: Seed of the plan-corruption schedule.
        input_seed: Seed of the corrupted-input corpus.
        horizon_s: Hard simulation cutoff per drive.
    """

    corruption_rates: Tuple[float, ...] = (0.0, 0.5, 1.0)
    traffic_vph: float = 300.0
    depart_s: float = 300.0
    seeds: Tuple[int, ...] = (13,)
    trip_cap_s: float = 320.0
    replan_interval_s: float = 20.0
    fault_seed: int = 11
    input_seed: int = 5
    horizon_s: float = 1800.0


@dataclass
class InputRow:
    """Contract outcomes for one input kind across its corruption corpus.

    Attributes:
        kind: Input family (``road``, ``trace`` or ``volume``).
        cases: Corrupted variants pushed through the contract.
        rejected_strict: Variants the strict contract rejected (must
            equal ``cases`` — a silent acceptance is a guard failure).
        repaired: Variants repair mode salvaged (with a change report).
        rejected_repair: Variants even repair mode refused.
        silently_accepted: Variants strict mode let through unchanged.
    """

    kind: str
    cases: int
    rejected_strict: int
    repaired: int
    rejected_repair: int
    silently_accepted: int


@dataclass
class PlanRow:
    """Closed-loop guard outcomes at one plan-corruption rate.

    Attributes:
        rate: Injected per-solve corruption probability.
        corrupted: Solves the fault model actually corrupted.
        plans_checked: Plans the supervisor screened.
        plans_repaired: Plans served after clamping repairs.
        plans_rejected: Plans refused (the ladder fell a tier).
        safe_stops: Safe-stop engagements.
        violation_counts: Violations seen, by code.
        tier_counts: Applied replans per serving tier.
        energy_mah: Mean derived trip energy.
        trip_time_s: Mean derived trip duration.
        completed: Drives that finished / total drives.
    """

    rate: float
    corrupted: int
    plans_checked: int
    plans_repaired: int
    plans_rejected: int
    safe_stops: int
    violation_counts: Dict[str, int]
    tier_counts: Dict[str, int]
    energy_mah: float
    trip_time_s: float
    completed: Tuple[int, int]


@dataclass
class GuardResult:
    """Both campaigns: input-contract rows plus plan-guard rows."""

    input_rows: List[InputRow]
    plan_rows: List[PlanRow]


# ----------------------------------------------------------------------
# Corrupted-input corpus
# ----------------------------------------------------------------------
def _corrupt_road(base: dict, case: int, seed: int) -> dict:
    """One deterministically corrupted copy of a road dict."""
    data = {
        **base,
        "zones": [dict(z) for z in base["zones"]],
        "signals": [dict(s) for s in base["signals"]],
        "stop_signs": list(base["stop_signs"]),
    }
    u = hash_uniform(seed, "road", case)
    mode = case % 6
    if mode == 0:
        data["length_m"] = float("nan")
    elif mode == 1:
        data["zones"][0]["end_m"] = data["zones"][0]["start_m"] - 10.0 * (1.0 + u)
    elif mode == 2:
        data["zones"][0]["v_max_ms"] = float("inf")
    elif mode == 3:
        data["stop_signs"] = [data["length_m"] * (1.5 + u)]
    elif mode == 4:
        data["signals"][0]["green_s"] = 0.0
    else:
        data["signals"][0]["turn_ratio"] = 1.5 + u
    return data


def _corrupt_trace(case: int, seed: int) -> List[Tuple[float, float, float]]:
    """One deterministically corrupted trace-row list."""
    rows = [(float(i), 10.0 + i, 10.0 * i) for i in range(8)]
    u = hash_uniform(seed, "trace", case)
    victim = 1 + int(u * 6)
    mode = case % 5
    t, v, s = rows[victim]
    if mode == 0:
        rows[victim] = (t, float("nan"), s)
    elif mode == 1:
        rows[victim] = (t, -0.2, s)  # small negative: repairable
    elif mode == 2:
        rows[victim] = (t, 500.0, s)  # unit error: never repairable
    elif mode == 3:
        rows[victim], rows[victim - 1] = rows[victim - 1], rows[victim]
    else:
        rows[victim] = (t, v, s - 50.0)  # position runs backwards
    return rows


def _corrupt_volume(case: int, seed: int) -> List[Tuple[int, float]]:
    """One deterministically corrupted hourly-volume row list."""
    rows = [(h, 200.0 + 10.0 * h) for h in range(6)]
    u = hash_uniform(seed, "volume", case)
    victim = 1 + int(u * 4)
    mode = case % 3
    h, vol = rows[victim]
    if mode == 0:
        rows[victim] = (h + 3, vol)  # hour gap: never repairable
    elif mode == 1:
        rows[victim] = (h, -5.0)  # clampable
    else:
        rows[victim] = (h, float("nan"))  # carry-forward-able
    return rows


def _run_inputs(config: GuardConfig) -> List[InputRow]:
    road = us25_greenville_segment()
    base = road_to_dict(road)
    corpora = {
        "road": [
            (_corrupt_road(base, i, config.input_seed), "road dict")
            for i in range(12)
        ],
        "trace": [
            (_corrupt_trace(i, config.input_seed), "trace rows") for i in range(10)
        ],
        "volume": [
            (_corrupt_volume(i, config.input_seed), "volume rows")
            for i in range(9)
        ],
    }
    validators = {
        "road": validate_road_dict,
        "trace": validate_trace_rows,
        "volume": validate_volume_rows,
    }
    rows: List[InputRow] = []
    for kind, corpus in corpora.items():
        validate = validators[kind]
        rejected_strict = repaired = rejected_repair = accepted = 0
        for payload, source in corpus:
            try:
                validate(payload, source=source, repair=False)
            except InputValidationError:
                rejected_strict += 1
            else:
                accepted += 1
            try:
                _data, report = validate(payload, source=source, repair=True)
            except InputValidationError:
                rejected_repair += 1
            else:
                if report:
                    repaired += 1
        rows.append(
            InputRow(
                kind=kind,
                cases=len(corpus),
                rejected_strict=rejected_strict,
                repaired=repaired,
                rejected_repair=rejected_repair,
                silently_accepted=accepted,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Degenerate-plan closed loop
# ----------------------------------------------------------------------
def _run_plans(config: GuardConfig) -> List[PlanRow]:
    road = us25_greenville_segment()
    rate_fn = vehicles_per_hour_to_per_second(config.traffic_vph)
    planner_config = PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
    store = ArtifactStore()
    rows: List[PlanRow] = []
    for rate in config.corruption_rates:
        planner = QueueAwareDpPlanner(
            road, arrival_rates=rate_fn, config=planner_config, store=store
        )
        fault = PlanFaultModel(rate=rate, seed=config.fault_seed)
        degenerate = DegeneratePlanner(planner, fault)
        service = CloudPlannerService(degenerate)
        client = ResilientPlanClient(service)
        supervisor = SafetySupervisor(PlanValidator(road))
        ladder = DegradationLadder(
            client,
            road,
            arrival_rates=rate_fn,
            config=planner_config,
            supervisor=supervisor,
            store=store,
        )
        energies: List[float] = []
        times: List[float] = []
        finished = 0
        total = 0
        tier_counts: Dict[str, int] = {}
        guard_totals = supervisor.stats.snapshot()
        for seed in config.seeds:
            total += 1
            scenario = Us25Scenario(
                road=road,
                arrival_rate_vph=config.traffic_vph,
                warmup_s=config.depart_s,
                seed=seed,
            )
            driver = ClosedLoopDriver(
                scenario,
                ladder=ladder,
                replan_interval_s=config.replan_interval_s,
            )
            outcome = driver.run(
                depart_s=config.depart_s,
                max_trip_time_s=config.trip_cap_s,
                horizon_s=config.horizon_s,
            )
            finished += 1
            energies.append(outcome.ev_trace.energy().net_mah)
            times.append(outcome.ev_trace.duration_s)
            for tier, n in outcome.tier_counts.items():
                tier_counts[tier] = tier_counts.get(tier, 0) + n
        guard = supervisor.stats.since(guard_totals)
        rows.append(
            PlanRow(
                rate=rate,
                corrupted=degenerate.corrupted,
                plans_checked=guard.plans_checked,
                plans_repaired=guard.plans_repaired,
                plans_rejected=guard.plans_rejected,
                safe_stops=guard.safe_stops,
                violation_counts=guard.violation_counts,
                tier_counts=tier_counts,
                energy_mah=float(np.mean(energies)) if energies else float("nan"),
                trip_time_s=float(np.mean(times)) if times else float("nan"),
                completed=(finished, total),
            )
        )
    return rows


def run(config: GuardConfig = GuardConfig()) -> GuardResult:
    """Run both guard campaigns."""
    return GuardResult(
        input_rows=_run_inputs(config), plan_rows=_run_plans(config)
    )


def report(result: GuardResult) -> str:
    """Both campaign tables plus a pass/fail verdict."""
    input_table = render_table(
        ["input", "cases", "rejected", "repaired", "refused in repair", "accepted"],
        [
            [
                row.kind,
                row.cases,
                row.rejected_strict,
                row.repaired,
                row.rejected_repair,
                row.silently_accepted,
            ]
            for row in result.input_rows
        ],
    )
    plan_table = render_table(
        ["corruption", "corrupted", "checked", "repaired", "rejected", "safe stops"]
        + list(TIERS)
        + ["E (mAh)", "trip (s)", "completed"],
        [
            [
                row.rate,
                row.corrupted,
                row.plans_checked,
                row.plans_repaired,
                row.plans_rejected,
                row.safe_stops,
            ]
            + [row.tier_counts.get(tier, 0) for tier in TIERS]
            + [
                row.energy_mah,
                row.trip_time_s,
                f"{row.completed[0]}/{row.completed[1]}",
            ]
            for row in result.plan_rows
        ],
    )
    inputs_clean = all(r.silently_accepted == 0 for r in result.input_rows)
    drives_done = all(
        r.completed[0] == r.completed[1] for r in result.plan_rows
    )
    corrupt_contained = all(
        r.corrupted == 0 or (r.plans_repaired + r.plans_rejected) > 0
        for r in result.plan_rows
    )
    verdict = (
        "no corrupted input accepted; every drive completed; every "
        "corrupted plan repaired or rejected"
        if inputs_clean and drives_done and corrupt_contained
        else "GUARD FAILURE: "
        + "; ".join(
            msg
            for ok, msg in [
                (inputs_clean, "a corrupted input was silently accepted"),
                (drives_done, "a drive did not complete"),
                (corrupt_contained, "a corrupted plan reached the vehicle"),
            ]
            if not ok
        )
    )
    codes = sorted(
        {code for row in result.plan_rows for code in row.violation_counts}
    )
    code_lines = "\n".join(
        f"  {code}: "
        + ", ".join(
            f"rate {row.rate:g} -> {row.violation_counts.get(code, 0)}"
            for row in result.plan_rows
        )
        for code in codes
    )
    return (
        "Extension — input contracts and plan-safety guard\n"
        "corrupted-input campaign (strict + repair modes)\n"
        + input_table
        + "\ndegenerate-plan campaign (supervised closed loop)\n"
        + plan_table
        + ("\nviolations by code\n" + code_lines if code_lines else "")
        + f"\n{verdict}"
    )
