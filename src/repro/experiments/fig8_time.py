"""Fig. 8 — cumulative travel time of the compared profiles.

For a representative departure, plots (as sampled series) distance versus
elapsed time for the four profiles.  The paper's reading: flat regions are
stops; the proposed profile's curve reaches the destination with the fast
profile's trip time, while mild driving takes markedly longer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.profile import TimedTrace
from repro.experiments.common import TripLab, TripSetup


@dataclass(frozen=True)
class Fig8Config:
    """Single representative departure."""

    setup: TripSetup = field(default_factory=TripSetup)
    depart_s: float = 315.0


@dataclass
class Fig8Result:
    """Distance-vs-time curves and stop statistics.

    Attributes:
        curves: Profile -> (elapsed seconds, distance metres) arrays.
        trip_times: Profile -> total derived trip time (s).
        stopped_time_s: Profile -> cumulative time below 0.5 m/s (s),
            the flat-slope regions of the paper's figure.
    """

    curves: Dict[str, Tuple[np.ndarray, np.ndarray]]
    trip_times: Dict[str, float]
    stopped_time_s: Dict[str, float]


def _stopped_time(trace: TimedTrace, threshold_ms: float = 0.5) -> float:
    dt = np.diff(trace.times_s)
    slow = trace.speeds_ms[:-1] < threshold_ms
    return float(np.sum(dt[slow]))


def run(config: Fig8Config = Fig8Config()) -> Fig8Result:
    """Collect the distance-time curves for one departure."""
    lab = TripLab(config.setup)
    outcome = lab.run_departure(config.depart_s)
    curves = {}
    trip_times = {}
    stopped = {}
    for name in TripLab.PROFILES:
        trace = outcome.traces[name]
        elapsed = trace.times_s - trace.times_s[0]
        distance = trace.positions_m - trace.positions_m[0]
        curves[name] = (elapsed, distance)
        trip_times[name] = trace.duration_s
        stopped[name] = _stopped_time(trace)
    return Fig8Result(curves=curves, trip_times=trip_times, stopped_time_s=stopped)


def report(result: Fig8Result) -> str:
    """Trip-time table and the fast-vs-proposed parity check."""
    rows = [
        (name, result.trip_times[name], result.stopped_time_s[name])
        for name in TripLab.PROFILES
    ]
    table = render_table(["profile", "trip time (s)", "time stopped (s)"], rows)
    parity = result.trip_times["proposed"] - result.trip_times["fast"]
    lines = [
        "Fig. 8 — cumulative travel time (one departure)",
        table,
        f"proposed minus fast trip time: {parity:+.1f} s "
        "(paper: proposed matches fast driving)",
        f"mild is the slowest profile: "
        f"{result.trip_times['mild'] >= max(result.trip_times[n] for n in ('fast', 'proposed'))}",
    ]
    return "\n".join(lines)
