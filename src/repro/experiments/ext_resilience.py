"""Extension: planning-loop resilience under injected communication faults.

The paper assumes an always-available cloud planner; a real V2I
deployment sees dropped requests, latency spikes and outages.  This
extension sweeps the cloud-request drop rate and measures how gracefully
the closed loop degrades when the resilient client and the degradation
ladder absorb the faults: energy, travel time and stop counts per fault
rate, alongside which planning tier served the replans and how often the
circuit breaker tripped.  Expected shape: at rate 0 the loop is
bit-identical to the fault-free path; as the drop rate grows, replans
shift from the cloud's queue-aware DP to the local tiers and the
energy/stop metrics drift toward the unplanned baselines — but every
trip still completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.plan_cache import CacheStats
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore, StoreStats
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.resilience.client import ResilientPlanClient
from repro.resilience.faults import CloudFaultModel
from repro.resilience.ladder import TIERS, DegradationLadder
from repro.route.us25 import us25_greenville_segment
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault sweep settings.

    Attributes:
        drop_rates: Cloud request-drop probabilities to sweep.
        traffic_vph: Background traffic level.
        departures: EV departure times per rate (the warmup per drive).
        seeds: Scenario seeds per departure — the resilience test
            matrix; every cell must complete its trip.
        trip_cap_s: Trip-time budget handed to the planner.
        replan_interval_s: Closed-loop replanning period.
        fault_seed: Seed of the injected fault schedule.
        max_attempts: Client wire attempts per request.
        breaker_threshold: Consecutive failures that trip the breaker.
        breaker_cooldown_s: Open-state cooldown before a half-open probe.
        horizon_s: Hard simulation cutoff per drive.
    """

    drop_rates: Tuple[float, ...] = (0.0, 0.25, 0.5)
    traffic_vph: float = 300.0
    departures: Tuple[float, ...] = (300.0,)
    seeds: Tuple[int, ...] = (13, 21)
    trip_cap_s: float = 320.0
    replan_interval_s: float = 15.0
    fault_seed: int = 7
    max_attempts: int = 2
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 45.0
    horizon_s: float = 1800.0


@dataclass
class ResilienceRow:
    """Aggregates of one fault rate across the drive matrix.

    Attributes:
        drop_rate: Injected per-attempt drop probability.
        energy_mah: Mean derived trip energy.
        trip_time_s: Mean derived trip duration.
        signal_stops: Total signal stops across the matrix.
        tier_counts: Applied replans per serving tier, summed.
        retries: Client retries across the matrix.
        breaker_opens: Times the breaker tripped open.
        completed: Drives that finished / total drives.
        cache: This rate's service plan-cache counters, snapshotted
            when its drive matrix finished.
    """

    drop_rate: float
    energy_mah: float
    trip_time_s: float
    signal_stops: int
    tier_counts: Dict[str, int]
    retries: int
    breaker_opens: int
    completed: Tuple[int, int]
    cache: Optional[CacheStats] = None


@dataclass
class ResilienceResult:
    """One row per swept fault rate.

    Attributes:
        rows: Per-rate aggregates.
        store: Counters of the artifact store shared across the whole
            sweep, snapshotted at the end.
    """

    rows: List[ResilienceRow]
    store: Optional[StoreStats] = None


def run(config: ResilienceConfig = ResilienceConfig()) -> ResilienceResult:
    """Sweep the drop rate and drive the closed loop through each."""
    road = us25_greenville_segment()
    rate = vehicles_per_hour_to_per_second(config.traffic_vph)
    planner_config = PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
    # One store across the whole drop-rate sweep: the corridor never
    # changes, so every planner and ladder tier after the first is a hit.
    store = ArtifactStore()
    rows: List[ResilienceRow] = []
    for drop in config.drop_rates:
        planner = QueueAwareDpPlanner(
            road, arrival_rates=rate, config=planner_config, store=store
        )
        service = CloudPlannerService(planner)
        fault = (
            CloudFaultModel(drop_rate=drop, seed=config.fault_seed)
            if drop > 0.0
            else None
        )
        client = ResilientPlanClient(
            service,
            fault=fault,
            max_attempts=config.max_attempts,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown_s=config.breaker_cooldown_s,
        )
        ladder = DegradationLadder(
            client, road, arrival_rates=rate, config=planner_config, store=store
        )
        energies: List[float] = []
        times: List[float] = []
        stops = 0
        finished = 0
        total = 0
        tier_counts: Dict[str, int] = {}
        for depart in config.departures:
            for seed in config.seeds:
                total += 1
                scenario = Us25Scenario(
                    road=road,
                    arrival_rate_vph=config.traffic_vph,
                    warmup_s=depart,
                    seed=seed,
                )
                driver = ClosedLoopDriver(
                    scenario,
                    ladder=ladder,
                    replan_interval_s=config.replan_interval_s,
                )
                outcome = driver.run(
                    depart_s=depart,
                    max_trip_time_s=config.trip_cap_s,
                    horizon_s=config.horizon_s,
                )
                finished += 1
                energies.append(outcome.ev_trace.energy().net_mah)
                times.append(outcome.ev_trace.duration_s)
                stops += outcome.sim.ev_signal_stops(road)
                for tier, n in outcome.tier_counts.items():
                    tier_counts[tier] = tier_counts.get(tier, 0) + n
        rows.append(
            ResilienceRow(
                drop_rate=drop,
                energy_mah=float(np.mean(energies)) if energies else float("nan"),
                trip_time_s=float(np.mean(times)) if times else float("nan"),
                signal_stops=stops,
                tier_counts=tier_counts,
                retries=client.stats.retries,
                breaker_opens=client.stats.breaker_opens,
                completed=(finished, total),
                cache=service.plan_cache.stats(),
            )
        )
    return ResilienceResult(rows=rows, store=store.stats())


def report(result: ResilienceResult) -> str:
    """Degradation table across the fault sweep."""
    header = (
        ["drop rate", "E (mAh)", "trip (s)", "stops"]
        + list(TIERS)
        + ["retries", "breaker opens", "completed"]
    )
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [
                row.drop_rate,
                row.energy_mah,
                row.trip_time_s,
                row.signal_stops,
            ]
            + [row.tier_counts.get(tier, 0) for tier in TIERS]
            + [
                row.retries,
                row.breaker_opens,
                f"{row.completed[0]}/{row.completed[1]}",
            ]
        )
    table = render_table(header, table_rows)
    all_done = all(r.completed[0] == r.completed[1] for r in result.rows)
    verdict = (
        "every drive completed at every fault rate"
        if all_done
        else "SOME DRIVES DID NOT COMPLETE"
    )
    footer = [verdict]
    caches = [row.cache for row in result.rows if row.cache is not None]
    if caches:
        hits = sum(c.hits for c in caches)
        lookups = sum(c.lookups for c in caches)
        evictions = sum(c.evictions for c in caches)
        footer.append(
            f"plan caches: {hits}/{lookups} hit(s), {evictions} eviction(s) "
            f"across {len(caches)} service(s)"
        )
    if result.store is not None:
        footer.append(f"artifact store: {result.store.summary()}")
    return (
        "Extension — closed-loop resilience under cloud-request faults\n"
        + table
        + "\n"
        + "\n".join(footer)
    )
