"""Extension: closed-loop robustness of chance-constrained MPC planning.

The paper's planner trusts its queue-clearance forecast exactly; this
extension measures what that trust costs when the forecast is wrong, and
what planning against the forecast's *distribution* buys back.  Two arms
drive the same drifted corridor:

* **point** — the paper's queue-aware DP served from the cloud, exactly
  as in the resilience extension.
* **stochastic** — the chance-constrained planner
  (:class:`~repro.core.uncertainty.ChanceConstrainedPlanner`, margins
  fitted from the SAE predictor's held-out residuals convolved with the
  swept signal-timing drift) wrapped in the receding-horizon planner
  (:class:`~repro.core.horizon.RecedingHorizonPlanner`) and served
  through the same :class:`~repro.cloud.service.CloudPlannerService`
  warm path; the same planner also backs the ladder's ``queue_dp_mpc``
  tier, so cloud faults degrade to a local MPC cycle instead of the
  queue-blind baseline DP.

Both arms plan on the *nominal* road while the simulator runs the
*actual* road produced by
:class:`~repro.resilience.faults.SignalDriftModel`, with the planner's
arrival-rate view additionally staled/corrupted by
:class:`~repro.resilience.faults.ForecastFaultModel`.  Expected shape:
at severity 0 both arms match (and at ``chance_level <= 0.5`` the
stochastic arm is bit-identical to the point arm); as severity grows the
point arm starts missing queue-clearance windows (signal stops) while
the stochastic arm's margins absorb the drift at a bounded energy
premium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore, StoreStats
from repro.core.horizon import RecedingHorizonPlanner
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.core.uncertainty import ResidualModel, window_start_sensitivity
from repro.core.uncertainty import ChanceConstrainedPlanner
from repro.guard.plan_check import PlanValidator
from repro.guard.supervisor import SafetySupervisor
from repro.resilience.client import ResilientPlanClient
from repro.resilience.faults import (
    CloudFaultModel,
    ForecastFaultModel,
    SignalDriftModel,
)
from repro.resilience.ladder import TIERS, DegradationLadder
from repro.route.us25 import us25_greenville_segment
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.traffic.sae import SAEPredictor
from repro.traffic.dataset import train_test_split_by_hour
from repro.traffic.volume import VolumeGenerator
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class UncertaintyConfig:
    """Forecast-uncertainty sweep settings.

    Attributes:
        severities: Signal-drift magnitudes to sweep (max drift, s);
            each level also scales the forecast-fault corruption.
        chance_level: In-window arrival probability ``p`` of the
            stochastic arm.
        traffic_vph: True background traffic level.
        forecast_staleness_s: Refresh interval of the (faulted) forecast.
        forecast_corruption_pct: Multiplicative forecast corruption at
            the highest severity; intermediate severities interpolate.
        departures: EV departure times per severity.
        seeds: Scenario seeds per departure.
        trip_cap_s: Trip-time budget handed to the planners.
        replan_interval_s: Closed-loop replanning period — the MPC cycle.
        lookahead_s: Optional MPC constraint-truncation window (s).
        drop_rate: Cloud request-drop probability injected in *both*
            arms, so degradation paths differ: the stochastic arm falls
            to its local ``queue_dp_mpc`` tier, the point arm to
            ``baseline_dp``.
        total_days / test_days / window_hours / sae_seed /
        sae_hidden / sae_pretrain_epochs / sae_finetune_epochs: SAE
            residual-fitting pipeline settings (a reduced Fig. 4
            training run).
        drift_seed: Seed of the drift/forecast fault draws.
        horizon_s: Hard simulation cutoff per drive.
    """

    severities: Tuple[float, ...] = (0.0, 6.0, 12.0)
    chance_level: float = 0.9
    traffic_vph: float = 300.0
    forecast_staleness_s: float = 300.0
    forecast_corruption_pct: float = 0.15
    departures: Tuple[float, ...] = (300.0,)
    seeds: Tuple[int, ...] = (13, 21)
    trip_cap_s: float = 320.0
    replan_interval_s: float = 10.0
    lookahead_s: Optional[float] = None
    drop_rate: float = 0.3
    total_days: int = 10
    test_days: int = 2
    window_hours: int = 12
    sae_seed: int = 11
    sae_hidden: Tuple[int, ...] = (16, 8)
    sae_pretrain_epochs: int = 3
    sae_finetune_epochs: int = 15
    drift_seed: int = 27
    horizon_s: float = 1800.0


@dataclass
class UncertaintyRow:
    """Both arms' aggregates at one drift severity.

    Attributes:
        severity_s: Injected max signal drift (s).
        chance_margin_s: The stochastic arm's window margin at this
            severity (s).
        point_stops / stoch_stops: Missed queue-clearance windows
            (signal stops) summed across the drive matrix.
        point_energy_mah / stoch_energy_mah: Mean driven trip energy.
        point_time_s / stoch_time_s: Mean driven trip duration.
        point_tiers / stoch_tiers: Applied replans per serving tier.
        completed: Drives finished / total, both arms pooled.
    """

    severity_s: float
    chance_margin_s: float
    point_stops: int
    stoch_stops: int
    point_energy_mah: float
    stoch_energy_mah: float
    point_time_s: float
    stoch_time_s: float
    point_tiers: Dict[str, int]
    stoch_tiers: Dict[str, int]
    completed: Tuple[int, int]


@dataclass
class UncertaintyResult:
    """One row per swept severity plus the fitted residual summary.

    Attributes:
        rows: Per-severity aggregates.
        residual_std_s: Spread of the SAE-derived timing residuals (s),
            before drift convolution.
        sensitivity_s_per_vph: Window-start sensitivity used to convert
            volume residuals to seconds.
        store: Shared artifact-store counters, snapshotted at the end.
    """

    rows: List[UncertaintyRow]
    residual_std_s: float
    sensitivity_s_per_vph: float
    store: Optional[StoreStats] = None


def fit_residual_model(
    config: UncertaintyConfig, rate_vps: float
) -> Tuple[ResidualModel, float]:
    """Fit the window-timing residual model from SAE held-out errors.

    Trains a reduced SAE on synthetic volumes, records its held-out
    forecast residuals (veh/h), and converts them to window-timing
    seconds through the QL model's window-start sensitivity at the
    operating arrival rate.  Returns the model and the sensitivity
    (s per veh/h).
    """
    series = VolumeGenerator(seed=config.sae_seed).generate(config.total_days)
    train, test = train_test_split_by_hour(
        series,
        test_hours=config.test_days * 24,
        window=config.window_hours,
    )
    predictor = SAEPredictor(
        hidden_sizes=config.sae_hidden,
        pretrain_epochs=config.sae_pretrain_epochs,
        finetune_epochs=config.sae_finetune_epochs,
        seed=config.sae_seed,
    )
    predictor.fit(train.features, train.targets)
    predictor.calibrate(test)

    road = us25_greenville_segment()
    probe = QueueAwareDpPlanner(
        road, arrival_rates=rate_vps, config=PlannerConfig(v_step_ms=2.0, s_step_m=50.0)
    )
    sens_vps = max(
        window_start_sensitivity(probe.queue_model(site.position_m), rate_vps)
        for site in road.signals
    )
    sens_vph = sens_vps / 3600.0
    return ResidualModel.from_predictor(predictor, sens_vph), sens_vph


def _drive_matrix(
    config: UncertaintyConfig,
    actual_road,
    ladder: DegradationLadder,
) -> Tuple[List[float], List[float], int, int, int, Dict[str, int]]:
    """Drive the (departure × seed) matrix through one arm's ladder."""
    energies: List[float] = []
    times: List[float] = []
    stops = 0
    finished = 0
    total = 0
    tiers: Dict[str, int] = {}
    for depart in config.departures:
        for seed in config.seeds:
            total += 1
            scenario = Us25Scenario(
                road=actual_road,
                arrival_rate_vph=config.traffic_vph,
                warmup_s=depart,
                seed=seed,
            )
            driver = ClosedLoopDriver(
                scenario,
                ladder=ladder,
                replan_interval_s=config.replan_interval_s,
            )
            outcome = driver.run(
                depart_s=depart,
                max_trip_time_s=config.trip_cap_s,
                horizon_s=config.horizon_s,
            )
            finished += 1
            energies.append(outcome.ev_trace.energy().net_mah)
            times.append(outcome.ev_trace.duration_s)
            stops += outcome.sim.ev_signal_stops(actual_road)
            for tier, n in outcome.tier_counts.items():
                tiers[tier] = tiers.get(tier, 0) + n
    return energies, times, stops, finished, total, tiers


def run(config: UncertaintyConfig = UncertaintyConfig()) -> UncertaintyResult:
    """Sweep the drift severity and drive both arms through each level."""
    nominal_road = us25_greenville_segment()
    rate = vehicles_per_hour_to_per_second(config.traffic_vph)
    planner_config = PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
    base_residuals, sens_vph = fit_residual_model(config, rate)
    max_severity = max(config.severities) if config.severities else 0.0
    # One store for the whole sweep and both arms: the chance margin
    # lives in the constraints, not the corridor artifacts, so every
    # planner after the first is a digest hit.
    store = ArtifactStore()
    rows: List[UncertaintyRow] = []
    for severity in config.severities:
        drift = SignalDriftModel(max_drift_s=severity, seed=config.drift_seed)
        actual_road = drift.drift_road(nominal_road) if severity > 0 else nominal_road
        corruption = (
            config.forecast_corruption_pct * severity / max_severity
            if max_severity > 0
            else 0.0
        )
        forecast_fault = ForecastFaultModel(
            staleness_s=config.forecast_staleness_s,
            corruption_pct=corruption,
            seed=config.drift_seed,
        )
        planner_rate = forecast_fault.degrade_rate(rate) if severity > 0 else rate
        residuals = base_residuals.with_timing_noise(severity)
        cloud_fault = (
            CloudFaultModel(drop_rate=config.drop_rate, seed=config.drift_seed)
            if config.drop_rate > 0
            else None
        )

        def _arm(planner, mpc):
            service = CloudPlannerService(planner)
            client = ResilientPlanClient(service, fault=cloud_fault)
            supervisor = SafetySupervisor(PlanValidator(nominal_road))
            return DegradationLadder(
                client,
                nominal_road,
                arrival_rates=planner_rate,
                config=planner_config,
                mpc=mpc,
                supervisor=supervisor,
                store=store,
            )

        point_planner = QueueAwareDpPlanner(
            nominal_road, arrival_rates=planner_rate, config=planner_config, store=store
        )
        stoch_inner = ChanceConstrainedPlanner(
            nominal_road,
            arrival_rates=planner_rate,
            residuals=residuals,
            chance_level=config.chance_level,
            config=planner_config,
            store=store,
        )
        stoch_mpc = RecedingHorizonPlanner(
            stoch_inner,
            lookahead_s=config.lookahead_s,
            cycle_s=config.replan_interval_s,
        )

        p_energy, p_time, p_stops, p_done, p_total, p_tiers = _drive_matrix(
            config, actual_road, _arm(point_planner, mpc=None)
        )
        s_energy, s_time, s_stops, s_done, s_total, s_tiers = _drive_matrix(
            config, actual_road, _arm(stoch_mpc, mpc=stoch_mpc)
        )
        rows.append(
            UncertaintyRow(
                severity_s=severity,
                chance_margin_s=stoch_inner.chance_margin_s,
                point_stops=p_stops,
                stoch_stops=s_stops,
                point_energy_mah=float(np.mean(p_energy)) if p_energy else float("nan"),
                stoch_energy_mah=float(np.mean(s_energy)) if s_energy else float("nan"),
                point_time_s=float(np.mean(p_time)) if p_time else float("nan"),
                stoch_time_s=float(np.mean(s_time)) if s_time else float("nan"),
                point_tiers=p_tiers,
                stoch_tiers=s_tiers,
                completed=(p_done + s_done, p_total + s_total),
            )
        )
    return UncertaintyResult(
        rows=rows,
        residual_std_s=base_residuals.std_s,
        sensitivity_s_per_vph=sens_vph,
        store=store.stats(),
    )


def report(result: UncertaintyResult) -> str:
    """Point vs stochastic arm across the drift sweep."""
    header = [
        "drift (s)",
        "margin (s)",
        "stops pt",
        "stops st",
        "E pt (mAh)",
        "E st (mAh)",
        "trip pt (s)",
        "trip st (s)",
        "completed",
    ]
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [
                row.severity_s,
                row.chance_margin_s,
                row.point_stops,
                row.stoch_stops,
                row.point_energy_mah,
                row.stoch_energy_mah,
                row.point_time_s,
                row.stoch_time_s,
                f"{row.completed[0]}/{row.completed[1]}",
            ]
        )
    table = render_table(header, table_rows)
    faulted = [r for r in result.rows if r.severity_s > 0]
    robust = all(r.stoch_stops <= r.point_stops for r in faulted)
    all_done = all(r.completed[0] == r.completed[1] for r in result.rows)
    mpc_replans = sum(
        r.stoch_tiers.get("queue_dp_mpc", 0) for r in result.rows
    )
    footer = [
        (
            "stochastic arm missed no more windows than the point arm at "
            "every faulted severity"
            if robust
            else "STOCHASTIC ARM MISSED MORE WINDOWS THAN THE POINT ARM"
        ),
        (
            "every drive completed at every severity"
            if all_done
            else "SOME DRIVES DID NOT COMPLETE"
        ),
        f"residuals: std {result.residual_std_s:.2f} s "
        f"(sensitivity {result.sensitivity_s_per_vph * 1000:.2f} ms/vph); "
        f"local MPC tier served {mpc_replans} replan(s)",
    ]
    tier_line = []
    for row in result.rows:
        served = {t: row.stoch_tiers.get(t, 0) for t in TIERS if row.stoch_tiers.get(t, 0)}
        tier_line.append(f"{row.severity_s:g}s:{served}")
    footer.append("stochastic tiers " + "; ".join(tier_line))
    if result.store is not None:
        footer.append(f"artifact store: {result.store.summary()}")
    return (
        "Extension — chance-constrained MPC vs point forecast under signal drift\n"
        + table
        + "\n"
        + "\n".join(footer)
    )
