"""Extension: the energy / trip-time trade-off frontier.

The paper fixes the trip budget at the fast drive's time and reports one
energy number.  The DP actually exposes the whole frontier: sweeping the
trip-time cap traces how much energy each extra second of budget buys —
and where the queue-free windows bend the curve (a cap that forces the
plan into a different signal cycle shows up as a step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import render_table
from repro.core.engine import ArtifactStore, StoreStats
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import InfeasibleProblemError
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class ParetoConfig:
    """Frontier sweep settings."""

    arrival_rate_vph: float = 300.0
    depart_s: float = 0.0
    cap_step_s: float = 10.0
    n_caps: int = 12
    margin_s: float = 2.0


@dataclass
class ParetoResult:
    """The sampled frontier.

    Attributes:
        points: (trip-time cap s, achieved trip s, energy mAh) triples,
            feasible caps only.
        min_feasible_trip_s: The fastest constraint-feasible trip.
        store: Artifact-store counters of the sweep — the whole cap sweep
            shares one corridor build, which the counters make auditable.
    """

    points: List[Tuple[float, float, float]]
    min_feasible_trip_s: float
    store: Optional[StoreStats] = None


def run(
    config: ParetoConfig = ParetoConfig(),
    store: Optional[ArtifactStore] = None,
) -> ParetoResult:
    """Sweep trip-time caps from the feasibility floor upward."""
    road = us25_greenville_segment()
    store = store if store is not None else ArtifactStore()
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(config.arrival_rate_vph),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0, window_margin_s=config.margin_s),
        store=store,
    )
    floor = planner.min_trip_time(config.depart_s)
    points: List[Tuple[float, float, float]] = []
    for k in range(config.n_caps):
        cap = floor + 1.0 + k * config.cap_step_s
        try:
            solution = planner.plan(start_time_s=config.depart_s, max_trip_time_s=cap)
        except InfeasibleProblemError:
            continue
        points.append((cap, solution.trip_time_s, solution.energy_mah))
    return ParetoResult(
        points=points, min_feasible_trip_s=floor, store=store.stats()
    )


def report(result: ParetoResult) -> str:
    """Frontier table plus an ASCII chart."""
    table = render_table(["cap (s)", "trip (s)", "energy (mAh)"], result.points)
    caps = [p[0] for p in result.points]
    energies = [p[2] for p in result.points]
    chart = ascii_plot(
        {"frontier": (caps, energies)},
        width=60,
        height=12,
        x_label="trip-time budget (s)",
    )
    lines = [
        "Extension — energy vs trip-time frontier (queue-aware DP)",
        f"fastest feasible trip: {result.min_feasible_trip_s:.1f} s",
        table,
        "",
        chart,
    ]
    if result.store is not None:
        lines.append("")
        lines.append(f"artifact store: {result.store.summary()}")
    return "\n".join(lines)
