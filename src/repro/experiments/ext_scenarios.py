"""Extension: how the optimal plan shifts across scenario packs.

The paper evaluates one vehicle in one implicit environment (Spark EV,
20 °C, calm air, unladen).  The scenario layer
(:mod:`repro.vehicle.scenarios`) makes that condition one point in a
family: cold mornings, loaded vans, hilly variants, headwind commutes.
This extension sweeps the queue-aware planner across every pack on the
US-25 corridor and reports planned energy, trip time and window
integrity per pack — the energy spread quantifies how far the paper's
single-condition numbers generalize.

Cache isolation is part of what the sweep demonstrates: all packs share
one :class:`~repro.core.engine.ArtifactStore`, and because the vehicle
and environment are part of the corridor digest, the store ends the
sweep holding one distinct build per pack — scenarios never serve each
other's energy tables, while a *repeat* of any pack is a pure warm hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.core.engine import ArtifactStore, StoreStats
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import InfeasibleProblemError
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second
from repro.vehicle.scenarios import get_scenario, scenario_ids


@dataclass(frozen=True)
class ScenarioSweepConfig:
    """Sweep settings.

    The default grid is coarse (the sweep builds one DP table per pack);
    it matches the test suite's coarse config so CI can run the whole
    experiment in seconds.
    """

    arrival_rate_vph: float = 300.0
    depart_s: float = 0.0
    trip_cap_s: float = 320.0
    v_step_ms: float = 1.0
    s_step_m: float = 50.0
    t_bin_s: float = 2.0
    horizon_s: float = 500.0
    margin_s: float = 2.0


@dataclass
class ScenarioSweepResult:
    """Outcome per scenario pack.

    Attributes:
        rows: ``(scenario_id, vehicle_id, energy_mah, trip_time_s,
            windows_ok, feasible)`` per pack, in registry order.
        digests: Corridor-artifact digest per pack (same order) — all
            pairwise distinct when the isolation contract holds.
        store: Shared artifact-store counters for the sweep.
    """

    rows: List[Tuple[str, str, float, float, bool, bool]]
    digests: List[str]
    store: Optional[StoreStats] = None


def run(
    config: ScenarioSweepConfig = ScenarioSweepConfig(),
    store: Optional[ArtifactStore] = None,
) -> ScenarioSweepResult:
    """Plan every scenario pack over one shared artifact store."""
    road = us25_greenville_segment()
    store = store if store is not None else ArtifactStore(capacity=16)
    rate = vehicles_per_hour_to_per_second(config.arrival_rate_vph)
    planner_config = PlannerConfig(
        v_step_ms=config.v_step_ms,
        s_step_m=config.s_step_m,
        t_bin_s=config.t_bin_s,
        horizon_s=config.horizon_s,
        window_margin_s=config.margin_s,
    )
    rows: List[Tuple[str, str, float, float, bool, bool]] = []
    digests: List[str] = []
    for scenario_id in scenario_ids():
        pack = get_scenario(scenario_id)
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=rate,
            vehicle=pack.vehicle(),
            config=planner_config,
            store=store,
            environment=pack.environment,
        )
        digests.append(planner.solver.artifacts.digest)
        try:
            solution = planner.plan(
                start_time_s=config.depart_s, max_trip_time_s=config.trip_cap_s
            )
        except InfeasibleProblemError:
            rows.append((scenario_id, pack.vehicle_id, float("nan"), float("nan"), False, False))
            continue
        rows.append(
            (
                scenario_id,
                pack.vehicle_id,
                solution.energy_mah,
                solution.trip_time_s,
                all(solution.windows_hit.values()),
                True,
            )
        )
    return ScenarioSweepResult(rows=rows, digests=digests, store=store.stats())


def report(result: ScenarioSweepResult) -> str:
    """Scenario table: per-pack energy/trip plus the isolation verdict."""
    table = render_table(
        ["scenario", "vehicle", "energy (mAh)", "trip (s)", "windows", "feasible"],
        [
            (sid, vid, energy, trip, "ok" if ok else "MISSED", "yes" if feas else "NO")
            for sid, vid, energy, trip, ok, feas in result.rows
        ],
    )
    nominal = next((r for r in result.rows if r[0] == "nominal"), None)
    lines = [
        "Extension — planned energy and trip time across scenario packs",
        table,
    ]
    if nominal is not None and nominal[5]:
        others = [r for r in result.rows if r[0] != "nominal" and r[5]]
        if others:
            spread_low = min(r[2] for r in others) - nominal[2]
            spread_high = max(r[2] for r in others) - nominal[2]
            lines.append(
                f"energy spread vs nominal: {spread_low:+.1f} mAh to "
                f"{spread_high:+.1f} mAh"
            )
    distinct = len(set(result.digests)) == len(result.digests)
    lines.append(
        "artifact digests: "
        + ("all pairwise distinct (scenario isolation holds)" if distinct
           else "COLLISION — scenario isolation broken")
    )
    if result.store is not None:
        lines.append(f"artifact store: {result.store.summary()}")
    return "\n".join(lines)
