"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes ``run(config) -> result`` and ``report(result) ->
str``; ``runner.main()`` executes the full evaluation and prints each
figure's table.  Benchmarks in ``benchmarks/`` wrap these entry points.

| Module            | Paper artifact                                   |
|-------------------|--------------------------------------------------|
| ``fig3_energy_map`` | Fig. 3 — consumption rate vs (speed, accel)    |
| ``fig4_sae``        | Fig. 4 — SAE volume prediction, per-day MRE/RMSE |
| ``fig5_queue``      | Fig. 5 — VM leaving rate & QL queue dynamics   |
| ``fig6_sumo``       | Fig. 6 — planned vs derived profiles in the sim |
| ``fig7_energy``     | Fig. 7 — total energy across driving profiles  |
| ``fig8_time``       | Fig. 8 — cumulative travel-time curves         |
"""
