"""Command-line planning tool: ``repro-plan``.

Plans one EV trip over the US-25 corridor (or a custom-length clone of
it) and prints the plan summary; optionally writes the time-sampled
profile to CSV and verifies the plan in the microsimulator.

Examples::

    repro-plan --rate 300 --depart 10 --cap 280
    repro-plan --planner baseline --csv plan.csv
    repro-plan --chance-level 0.9 --timing-error 6   # margin vs forecast error
    repro-plan --chance-level 0.9 --receding-horizon # ... replanned per cycle
    repro-plan --rate 500 --verify --seed 7
    repro-plan --metrics               # plan summary + JSON metrics report
    repro-plan --metrics=run.json      # write the report to a file
    repro-plan --road route.json --strict   # exit 2 on any contract breach
    repro-plan --via-server            # plan over a real loopback TCP server
    repro-plan --via-server --drop-rate 0.3  # ... through a chaos proxy

Exit codes: 0 success, 1 planning failure, 2 input or plan failed its
validation contract (malformed road file, plan-audit violation under
``--strict``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro import obs
from repro.core.planner import (
    BaselineDpPlanner,
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.errors import InputValidationError, ReproError
from repro.route.us25 import us25_greenville_segment
from repro.trace.io import save_trace_csv
from repro.units import vehicles_per_hour_to_per_second

#: Exit code for contract violations (vs 1 for ordinary planning failure).
EXIT_INVALID = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-plan`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Plan a queue-aware EV velocity profile over the US-25 corridor.",
    )
    parser.add_argument(
        "--planner",
        choices=("proposed", "baseline", "unconstrained"),
        default="proposed",
        help="proposed = queue-aware T_q windows; baseline = green windows [2]; "
        "unconstrained = ignore signals",
    )
    parser.add_argument(
        "--rate", type=float, default=153.0, help="arrival rate at the signals (veh/h)"
    )
    parser.add_argument("--depart", type=float, default=0.0, help="departure time (s)")
    parser.add_argument(
        "--cap", type=float, default=None, help="trip-time budget (s); default: fastest + 30"
    )
    parser.add_argument("--v-step", type=float, default=0.5, help="velocity grid step (m/s)")
    parser.add_argument("--s-step", type=float, default=10.0, help="distance grid step (m)")
    parser.add_argument(
        "--margin", type=float, default=2.0, help="arrival-window safety margin (s)"
    )
    parser.add_argument(
        "--chance-level",
        type=float,
        default=None,
        metavar="P",
        help="plan chance-constrained (proposed planner only): shrink every "
        "queue-free window so the arrival lands inside the true window with "
        "probability >= P under the --timing-error distribution; P <= 0.5 "
        "adds no margin and plans bit-identically to the point forecast",
    )
    parser.add_argument(
        "--timing-error",
        type=float,
        default=6.0,
        metavar="S",
        help="largest absolute window-timing error modeled for "
        "--chance-level (s), as a uniform distribution over [-S, S]",
    )
    parser.add_argument(
        "--receding-horizon",
        action="store_true",
        help="wrap the planner in the MPC-style receding-horizon tier: "
        "replans run per cycle from the current state over warm corridor "
        "artifacts, and an infeasible cycle retries minimum-time before "
        "failing typed",
    )
    parser.add_argument(
        "--lookahead",
        type=float,
        default=None,
        metavar="S",
        help="with --receding-horizon: only carry signal constraints "
        "optimistically reachable within S seconds; default keeps all",
    )
    parser.add_argument("--csv", type=str, default=None, help="write the profile to CSV")
    parser.add_argument(
        "--road",
        type=str,
        default=None,
        help="plan over a corridor loaded from a JSON road file instead of US-25",
    )
    parser.add_argument(
        "--corridor",
        type=str,
        default=None,
        metavar="NAME",
        help="plan over a named corridor from the builtin catalog "
        "(see --list-corridors); an unknown name exits 2 listing the "
        "known ids",
    )
    parser.add_argument(
        "--list-corridors",
        action="store_true",
        help="print the builtin corridor catalog (id, length, background "
        "rate, description) and exit",
    )
    parser.add_argument(
        "--vehicle",
        type=str,
        default=None,
        metavar="NAME",
        help="plan for a named vehicle from the catalog (see "
        "--list-vehicles); default is the paper's Spark EV; an unknown "
        "name exits 2 listing the known ids",
    )
    parser.add_argument(
        "--scenario",
        type=str,
        default=None,
        metavar="NAME",
        help="plan under a named scenario pack (vehicle + ambient "
        "environment: temperature, wind, payload, grade offset; see "
        "--list-vehicles); --vehicle overrides the pack's vehicle",
    )
    parser.add_argument(
        "--list-vehicles",
        action="store_true",
        help="print the vehicle catalog and the scenario packs, then exit",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="play the plan through the microsimulator and report the derived trip",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulator seed for --verify")
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="collect observability metrics (DP per-phase spans, latency "
        "histograms) and emit a JSON report: to stdout, or to PATH with "
        "--metrics=PATH (which also prints an ASCII summary)",
    )
    parser.add_argument(
        "--drop-rate",
        type=float,
        default=None,
        metavar="P",
        help="plan through the resilient cloud client with this request "
        "drop probability; on cloud failure the degradation ladder serves "
        "a fallback tier (baseline DP, GLOSA, speed-limit tracking)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=7,
        help="fault-injection seed for --drop-rate",
    )
    parser.add_argument(
        "--via-server",
        action="store_true",
        help="serve the plan over a real loopback TCP server (the asyncio "
        "front door) through the socket transport and resilient client; "
        "with --drop-rate P the wire additionally crosses a seeded chaos "
        "proxy that drops/delays/truncates/duplicates frames at rate P",
    )
    parser.add_argument(
        "--no-artifact-cache",
        action="store_true",
        help="build the corridor artifacts directly instead of through the "
        "shared artifact store (solutions are bit-identical either way; "
        "this only disables reuse across planner/ladder tiers)",
    )
    parser.add_argument(
        "--service-stats-json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the composed serving-stack counters (service, plan "
        "caches, resilient client, artifact store) to PATH as one JSON "
        "document (schema repro.cloud.stats/v1)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="audit the produced plan against the safety contract "
        "(finite, monotone, within speed/accel envelopes, arrivals "
        "inside green windows) and print the verdict",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="implies --validate; a plan-audit violation (or any input "
        "contract breach) exits with code 2 instead of a warning",
    )
    return parser


def _emit_metrics(destination: str, registry: obs.MetricsRegistry) -> None:
    """Write the metrics report: ``-`` means stdout, else a file + summary."""
    report = obs.to_json(registry)
    if destination == "-":
        print(report)
        return
    try:
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    except OSError as exc:
        print(f"could not write metrics to {destination!r}: {exc}", file=sys.stderr)
        return
    print(f"metrics written to {destination}")
    print(obs.summary(registry))


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    registry = obs.get_registry()
    if args.list_corridors:
        from repro.cloud.registry import builtin_catalog

        catalog = builtin_catalog()
        for corridor_id in catalog.ids():
            spec = catalog.spec(corridor_id)
            print(
                f"{corridor_id:14s} {spec.road.length_m / 1000.0:5.1f} km, "
                f"{spec.arrival_rate_vph:4.0f} veh/h  {spec.description}"
            )
        return 0
    if args.list_vehicles:
        from repro.vehicle.catalog import describe_vehicle, get_vehicle, vehicle_ids
        from repro.vehicle.scenarios import get_scenario, scenario_ids

        print("vehicles:")
        for vehicle_id in vehicle_ids():
            params = get_vehicle(vehicle_id)
            print(
                f"  {vehicle_id:14s} {params.mass_kg:6.0f} kg  "
                f"{describe_vehicle(vehicle_id)}"
            )
        print("scenario packs:")
        for scenario_id in scenario_ids():
            pack = get_scenario(scenario_id)
            print(
                f"  {scenario_id:16s} vehicle={pack.vehicle_id:13s} "
                f"{pack.environment.describe()}  {pack.description}"
            )
        return 0
    if args.metrics is not None:
        # Enable before the planner is built so the DP table-build span
        # (often the dominant startup cost) lands in the report.
        registry.enabled = True
        registry.reset()
    if args.road and args.corridor:
        print(
            "--road and --corridor are mutually exclusive", file=sys.stderr
        )
        return EXIT_INVALID
    if args.corridor:
        from repro.cloud.registry import builtin_catalog
        from repro.errors import UnknownCorridorError

        try:
            road = builtin_catalog().spec(args.corridor).road
        except UnknownCorridorError as exc:
            print(f"unknown corridor: {exc}", file=sys.stderr)
            return EXIT_INVALID
    elif args.road:
        from repro.route.io import load_road_json

        try:
            road = load_road_json(args.road)
        except InputValidationError as exc:
            print(f"invalid road file: {exc}", file=sys.stderr)
            return EXIT_INVALID
    else:
        road = us25_greenville_segment()
    vehicle = None
    environment = None
    scenario_pack = None
    if args.scenario or args.vehicle:
        from repro.vehicle.catalog import get_vehicle
        from repro.vehicle.scenarios import get_scenario

        try:
            if args.scenario:
                scenario_pack = get_scenario(args.scenario)
                environment = scenario_pack.environment
                vehicle = scenario_pack.vehicle()
            if args.vehicle:
                # Explicit vehicle beats the pack's choice.
                vehicle = get_vehicle(args.vehicle)
        except InputValidationError as exc:
            print(f"invalid vehicle/scenario: {exc}", file=sys.stderr)
            return EXIT_INVALID
    config = PlannerConfig(
        v_step_ms=args.v_step, s_step_m=args.s_step, window_margin_s=args.margin
    )
    rate = vehicles_per_hour_to_per_second(args.rate)
    if args.no_artifact_cache:
        store = None
    else:
        from repro.core.engine import ArtifactStore

        store = ArtifactStore()
    if args.chance_level is not None and args.planner != "proposed":
        print(
            "--chance-level requires the proposed (queue-aware) planner",
            file=sys.stderr,
        )
        return EXIT_INVALID
    if args.planner == "proposed":
        if args.chance_level is not None:
            from repro.core.uncertainty import ChanceConstrainedPlanner, ResidualModel

            try:
                residuals = ResidualModel([0.0]).with_timing_noise(args.timing_error)
                planner = ChanceConstrainedPlanner(
                    road,
                    arrival_rates=rate,
                    residuals=residuals,
                    chance_level=args.chance_level,
                    vehicle=vehicle,
                    config=config,
                    store=store,
                    environment=environment,
                )
            except ReproError as exc:
                print(f"invalid chance constraint: {exc}", file=sys.stderr)
                return EXIT_INVALID
        else:
            planner = QueueAwareDpPlanner(
                road, arrival_rates=rate, vehicle=vehicle, config=config,
                store=store, environment=environment,
            )
    elif args.planner == "baseline":
        planner = BaselineDpPlanner(
            road, vehicle=vehicle, config=config, store=store,
            environment=environment,
        )
    else:
        planner = UnconstrainedDpPlanner(
            road, vehicle=vehicle, config=config, store=store,
            environment=environment,
        )
    if args.receding_horizon:
        from repro.core.horizon import RecedingHorizonPlanner

        try:
            planner = RecedingHorizonPlanner(planner, lookahead_s=args.lookahead)
        except ReproError as exc:
            print(f"invalid receding horizon: {exc}", file=sys.stderr)
            return EXIT_INVALID

    solution = None
    tier_plan = None
    client = None
    cloud_service = None
    served_via = None
    try:
        cap = args.cap
        if cap is None:
            cap = planner.min_trip_time(args.depart) + 30.0
        if args.via_server:
            from repro.cloud.netclient import NetworkPlanTransport
            from repro.cloud.server import serve_in_background
            from repro.cloud.service import CloudPlannerService
            from repro.resilience.client import ResilientPlanClient
            from repro.resilience.ladder import DegradationLadder

            cloud_service = CloudPlannerService(planner)
            handle = serve_in_background(cloud_service)
            proxy = None
            target = handle.address
            if args.drop_rate:
                from repro.resilience.netfaults import ChaosProxy, NetFaultSpec

                proxy = ChaosProxy(
                    handle.address,
                    NetFaultSpec.uniform(args.drop_rate, seed=args.chaos_seed),
                )
                target = proxy.address
            transport = NetworkPlanTransport(target[0], target[1], timeout_s=5.0)
            client = ResilientPlanClient(transport, max_attempts=4, deadline_s=30.0)
            ladder = DegradationLadder(
                client,
                road,
                arrival_rates=rate if args.planner == "proposed" else None,
                vehicle=vehicle,
                config=config,
                store=store,
                environment=environment,
            )
            served_via = (
                f"tcp {handle.address[0]}:{handle.address[1]}"
                + (f" through chaos proxy (p={args.drop_rate})" if proxy else "")
            )
            try:
                tier_plan = ladder.plan(args.depart, max_trip_time_s=cap)
            finally:
                transport.close()
                if proxy is not None:
                    proxy.close()
                handle.drain()
        elif args.drop_rate is not None:
            from repro.cloud.service import CloudPlannerService
            from repro.resilience.client import ResilientPlanClient
            from repro.resilience.faults import CloudFaultModel
            from repro.resilience.ladder import DegradationLadder

            fault = (
                CloudFaultModel(drop_rate=args.drop_rate, seed=args.chaos_seed)
                if args.drop_rate > 0.0
                else None
            )
            cloud_service = CloudPlannerService(planner)
            client = ResilientPlanClient(cloud_service, fault=fault)
            ladder = DegradationLadder(
                client,
                road,
                arrival_rates=rate if args.planner == "proposed" else None,
                vehicle=vehicle,
                config=config,
                store=store,
                environment=environment,
            )
            tier_plan = ladder.plan(args.depart, max_trip_time_s=cap)
        else:
            solution = planner.plan(start_time_s=args.depart, max_trip_time_s=cap)
    except InputValidationError as exc:
        print(f"invalid input: {exc}", file=sys.stderr)
        if args.metrics is not None:
            _emit_metrics(args.metrics, registry)
        return EXIT_INVALID
    except ReproError as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        if args.metrics is not None:
            _emit_metrics(args.metrics, registry)
        return 1

    print(f"route        : {road.name} ({road.length_m / 1000:.1f} km)")
    print(f"planner      : {args.planner}")
    if args.vehicle or scenario_pack is not None:
        vehicle_id = args.vehicle or scenario_pack.vehicle_id
        print(f"vehicle      : {vehicle_id}")
    if scenario_pack is not None:
        print(f"scenario     : {scenario_pack.scenario_id} ({environment.describe()})")
    if args.chance_level is not None:
        inner = planner.inner if args.receding_horizon else planner
        print(
            f"chance level : {args.chance_level:.2f} "
            f"(window margin +{inner.chance_margin_s:.1f} s)"
        )
    if args.receding_horizon:
        lookahead = "full horizon" if args.lookahead is None else f"{args.lookahead:.0f} s"
        print(f"mpc          : receding horizon, lookahead {lookahead}")
    print(f"trip budget  : {cap:.1f} s")
    if tier_plan is not None:
        print(f"served by    : {tier_plan.tier} tier")
        if served_via is not None:
            print(f"served via   : {served_via}")
        print(f"planned trip : {tier_plan.trip_time_s:.1f} s")
        print(f"planned energy: {tier_plan.energy_mah:.1f} mAh")
        stats = client.stats
        print(
            f"cloud client : {stats.attempts} attempt(s), {stats.retries} "
            f"retr{'y' if stats.retries == 1 else 'ies'}, {stats.drops} "
            f"drop(s), breaker {stats.breaker_state}"
        )
    else:
        print(f"planned trip : {solution.trip_time_s:.1f} s")
        print(f"planned energy: {solution.energy_mah:.1f} mAh")
        for position in sorted(solution.signal_arrivals):
            arrival = solution.signal_arrivals[position]
            status = "ok" if solution.windows_hit[position] else "MISSED"
            print(f"  signal @ {position:6.0f} m: arrive {arrival:7.1f} s [{status}]")

    profile = solution.profile if solution is not None else tier_plan.profile
    if args.validate or args.strict:
        from repro.guard.plan_check import PlanValidator

        if profile is None:
            print("plan audit   : skipped (no profile; speed-limit tier served)")
        else:
            verdict = PlanValidator(road).check_profile(
                profile, planner.signal_constraints(args.depart)
            )
            print(f"plan audit   : {verdict.summary()}")
            if not verdict.ok:
                for violation in verdict.violations:
                    print(f"  {violation}", file=sys.stderr)
                if args.strict:
                    if args.metrics is not None:
                        _emit_metrics(args.metrics, registry)
                    return EXIT_INVALID

    if args.csv:
        if profile is None:
            print("no profile to write (speed-limit tier served)", file=sys.stderr)
        else:
            save_trace_csv(profile.to_time_trace(dt_s=0.5), args.csv)
            print(f"profile written to {args.csv}")

    if args.verify:
        from repro.sim.scenario import Us25Scenario

        scenario = Us25Scenario(
            road=road,
            arrival_rate_vph=args.rate,
            warmup_s=args.depart,
            seed=args.seed,
        )
        command = profile if profile is not None else tier_plan.command
        result = scenario.drive(command, depart_s=args.depart)
        trace = result.ev_trace
        print(
            f"verified in sim: {trace.duration_s:.1f} s, "
            f"{trace.energy().net_mah:.1f} mAh, "
            f"{result.ev_signal_stops(road)} signal stop(s)"
        )

    if args.metrics is not None:
        if cloud_service is not None:
            plan_cache, _, _ = cloud_service.cache_stats()
            print(f"plan cache   : {plan_cache.summary()}")
        if store is not None:
            print(f"artifact store: {store.stats().summary()}")
        _emit_metrics(args.metrics, registry)

    if args.service_stats_json:
        import json

        from repro.cloud.stats import compose_stats_document

        document = compose_stats_document(
            service=cloud_service,
            client=client,
            store=store,
        )
        try:
            with open(args.service_stats_json, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(
                f"could not write service stats to {args.service_stats_json!r}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"service stats written to {args.service_stats_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
