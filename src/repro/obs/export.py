"""Render a :class:`~repro.obs.registry.MetricsRegistry` for humans and files.

Three formats:

* :func:`to_json` — the full snapshot, one JSON document (the format the
  ``repro-plan --metrics`` report uses).
* :func:`to_csv` — flat ``kind,name,stat,value`` rows, convenient for
  spreadsheet diffing across runs.
* :func:`summary` — an aligned ASCII report in the style of the
  experiment tables (:mod:`repro.analysis.tables`); span rows carry
  their full dotted path, so nesting stays readable.
"""

from __future__ import annotations

import io
import json
import math
from typing import List, Sequence

from repro.obs.registry import MetricsRegistry


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Serialize the registry snapshot as a JSON document."""

    def _default(obj):
        return str(obj)

    snap = registry.snapshot()
    return json.dumps(_sanitize(snap), indent=indent, default=_default)


def _sanitize(value):
    """Replace non-finite floats (JSON has no NaN literal) recursively."""
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def to_csv(registry: MetricsRegistry) -> str:
    """Serialize the registry as flat ``kind,name,stat,value`` CSV rows."""
    snap = registry.snapshot()
    out = io.StringIO()
    out.write("kind,name,stat,value\n")

    def _row(kind: str, name: str, stat: str, value) -> None:
        if isinstance(value, float) and not math.isfinite(value):
            value = ""
        out.write(f"{kind},{name},{stat},{value}\n")

    for name, value in snap["counters"].items():
        _row("counter", name, "value", value)
    for name, value in snap["gauges"].items():
        _row("gauge", name, "value", value)
    for name, stats in snap["histograms"].items():
        for stat, value in stats.items():
            _row("histogram", name, stat, value)
    for path, stats in snap["spans"].items():
        for stat, value in stats.items():
            if stat == "fields":
                for field, fv in value.items():
                    _row("span", path, f"field.{field}", fv)
            else:
                _row("span", path, stat, value)
    return out.getvalue()


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "-"
        return f"{value:.{digits}g}"
    return str(value)


def summary(registry: MetricsRegistry) -> str:
    """An aligned plain-text report of everything the registry holds."""
    from repro.analysis.tables import render_table

    snap = registry.snapshot()
    sections: List[str] = []

    if snap["spans"]:
        rows = []
        for path, stats in snap["spans"].items():
            rows.append(
                [
                    path,
                    stats["count"],
                    _fmt(stats["total_s"]),
                    _fmt(stats["mean_s"]),
                    _fmt(stats["p50_s"]),
                    _fmt(stats["p99_s"]),
                ]
            )
        sections.append(
            "spans\n"
            + render_table(
                ["span", "count", "total_s", "mean_s", "p50_s", "p99_s"], rows
            )
        )

    if snap["counters"]:
        rows = [[name, _fmt(value)] for name, value in snap["counters"].items()]
        sections.append("counters\n" + render_table(["counter", "value"], rows))

    if snap["gauges"]:
        rows = [[name, _fmt(value)] for name, value in snap["gauges"].items()]
        sections.append("gauges\n" + render_table(["gauge", "value"], rows))

    if snap["histograms"]:
        rows = []
        for name, stats in snap["histograms"].items():
            rows.append(
                [
                    name,
                    stats.get("count", 0),
                    _fmt(stats.get("mean")),
                    _fmt(stats.get("p50")),
                    _fmt(stats.get("p90")),
                    _fmt(stats.get("p99")),
                    _fmt(stats.get("max")),
                ]
            )
        sections.append(
            "histograms\n"
            + render_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"], rows
            )
        )

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
