"""Lightweight, dependency-free observability for the planning stack.

The hot subsystems — the DP solver, the corridor simulator, the SAE
trainer and the cloud planning service — all report into a
:class:`MetricsRegistry`: counters, gauges, fixed log-bucket histograms
(latency percentiles without any numpy work on the hot path) and
nestable timing spans.  The module-level default registry starts
*disabled*; instrumented code then pays only a cheap ``enabled`` check,
so normal library use is unaffected (see
``benchmarks/test_bench_obs.py`` for the overhead bound).

Enable collection around any workload::

    from repro import obs

    registry = obs.get_registry()
    registry.enabled = True
    planner.plan(start_time_s=0.0)
    print(obs.summary(registry))          # ASCII report
    print(obs.to_json(registry))          # machine-readable report

or hand a scoped registry to one measurement::

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        service.request(request)
    reg.histogram("cloud.request_s")

``repro-plan --metrics[=PATH]`` and ``repro-experiments --metrics PATH``
surface the same reports from the command line.
"""

from repro.obs.export import summary, to_csv, to_json
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    Span,
    SpanStats,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanStats",
    "get_registry",
    "set_registry",
    "summary",
    "to_csv",
    "to_json",
    "use_registry",
]
