"""Metrics primitives: counters, gauges, histograms and timing spans.

Everything here is dependency-free (stdlib only) and built for two modes:

* **enabled** — full recording: counters/gauges update, histogram samples
  land in fixed log-spaced buckets, and :meth:`MetricsRegistry.span`
  returns a real timing span that nests under the currently open span.
* **disabled** (the default for the module-level registry) — every entry
  point returns after a single attribute check, and :meth:`span` hands
  back a shared no-op object, so instrumented hot paths pay only a cheap
  ``enabled`` test per touch point.

Histogram percentiles are estimated from the log buckets (relative error
bounded by the bucket growth factor, tightened by linear interpolation
inside the winning bucket) — there is no numpy percentile over raw
samples on any hot path, and memory per histogram is a fixed bucket
array regardless of sample count.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanStats",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram geometry: bucket 0 is ``[0, base)``; bucket ``i``
#: (``i >= 1``) spans ``[base * growth**(i-1), base * growth**i)``.  With
#: these defaults the top bucket edge is ~2.6e9, covering everything from
#: sub-microsecond timings to transition counts in the billions.
DEFAULT_BASE = 1e-7
DEFAULT_GROWTH = 1.35
DEFAULT_BUCKETS = 128


class Histogram:
    """Fixed log-bucket histogram of non-negative samples.

    Args:
        base: Upper edge of the first (underflow) bucket.
        growth: Geometric bucket growth factor (> 1).
        n_buckets: Total bucket count; the last bucket absorbs overflow.
    """

    __slots__ = ("base", "growth", "n_buckets", "counts", "count", "total",
                 "min", "max", "_log_growth")

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
        n_buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if base <= 0 or growth <= 1.0 or n_buckets < 2:
            raise ValueError("histogram needs base > 0, growth > 1, n_buckets >= 2")
        self.base = float(base)
        self.growth = float(growth)
        self.n_buckets = int(n_buckets)
        self._log_growth = math.log(growth)
        self.counts = [0] * self.n_buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample (negative samples clamp to zero)."""
        v = value if value > 0.0 else 0.0
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v < self.base:
            self.counts[0] += 1
            return
        idx = int(math.log(v / self.base) / self._log_growth) + 1
        if idx >= self.n_buckets:
            idx = self.n_buckets - 1
        self.counts[idx] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples; ``nan`` when empty."""
        return self.total / self.count if self.count else math.nan

    def _bucket_bounds(self, idx: int) -> Tuple[float, float]:
        if idx == 0:
            return 0.0, self.base
        lo = self.base * self.growth ** (idx - 1)
        return lo, lo * self.growth

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``0 <= q <= 100``).

        Walks the cumulative bucket counts and interpolates linearly
        inside the bucket containing the target rank; the result is
        clamped to the observed ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return math.nan
        rank = q / 100.0 * self.count
        cumulative = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo, hi = self._bucket_bounds(idx)
                frac = (rank - cumulative) / n
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            cumulative += n
        return self.max

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a plain dict (JSON-friendly)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class Span:
    """One timed section of code, nested under the span open at entry.

    Use through :meth:`MetricsRegistry.span`::

        with registry.span("dp.solve") as sp:
            ...
            sp.add(expanded_transitions=n)

    Numeric fields added with :meth:`add` are summed across all spans
    sharing a path; non-numeric fields keep the last value.
    """

    __slots__ = ("_registry", "name", "path", "fields", "start_s", "duration_s")

    def __init__(self, registry: "MetricsRegistry", name: str, fields: dict) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self.fields = fields
        self.start_s = 0.0
        self.duration_s = 0.0

    def add(self, **fields) -> None:
        """Attach custom fields to this span."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack
        if stack:
            self.path = stack[-1].path + "." + self.name
        stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        stack = self._registry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        self._registry._record_span(self)
        return False


class _NullSpan:
    """Shared no-op stand-in returned when the registry is disabled."""

    __slots__ = ()

    def add(self, **fields) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanStats:
    """Aggregate over every finished span sharing one path."""

    __slots__ = ("path", "count", "total_s", "histogram", "fields")

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self.total_s = 0.0
        self.histogram = Histogram()
        self.fields: Dict[str, object] = {}

    def record(self, duration_s: float, fields: dict) -> None:
        """Fold one finished span into the aggregate.

        Numeric fields (except bools) sum across spans at the same path;
        any other field keeps its latest value.
        """
        self.count += 1
        self.total_s += duration_s
        self.histogram.observe(duration_s)
        for key, value in fields.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.fields[key] = value
            else:
                current = self.fields.get(key, 0)
                if isinstance(current, (int, float)) and not isinstance(current, bool):
                    self.fields[key] = current + value
                else:
                    self.fields[key] = value

    def snapshot(self) -> Dict[str, object]:
        """Count, total/percentile timings and fields as a plain dict."""
        hist = self.histogram.snapshot()
        out: Dict[str, object] = {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.count if self.count else math.nan,
            "p50_s": hist.get("p50", math.nan),
            "p90_s": hist.get("p90", math.nan),
            "p99_s": hist.get("p99", math.nan),
        }
        if self.fields:
            out["fields"] = dict(self.fields)
        return out


class MetricsRegistry:
    """Named counters, gauges, histograms and span aggregates.

    Args:
        enabled: Initial recording state.  When ``False`` every recording
            method is a near-free no-op; flip :attr:`enabled` at any time.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._span_stack: List[Span] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str, **fields):
        """Open a timing span; returns a no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, fields)

    def _record_span(self, span: Span) -> None:
        if not self.enabled:
            return
        stats = self._spans.get(span.path)
        if stats is None:
            stats = self._spans[span.path] = SpanStats(span.path)
        stats.record(span.duration_s, span.fields)

    # ------------------------------------------------------------------
    # Access / lifecycle
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        """Latest value of a gauge, or ``None`` when never set."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` when no sample landed yet."""
        return self._histograms.get(name)

    def span_stats(self, path: str) -> Optional[SpanStats]:
        """Aggregate stats of all finished spans at a path, if any."""
        return self._spans.get(path)

    def span_paths(self) -> List[str]:
        """All span paths with at least one finished span, sorted."""
        return sorted(self._spans)

    def reset(self) -> None:
        """Drop all recorded metrics (the enabled flag is untouched)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._span_stack.clear()

    def snapshot(self) -> Dict[str, object]:
        """Full registry contents as one JSON-serializable dict."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
            "spans": {
                path: stats.snapshot()
                for path, stats in sorted(self._spans.items())
            },
        }


# ----------------------------------------------------------------------
# Module-level default registry
# ----------------------------------------------------------------------
#: The default registry starts disabled so that library users who never
#: opt into metrics pay only the ``enabled`` checks.
_default_registry = MetricsRegistry(enabled=False)
_active_registry = _default_registry


def get_registry() -> MetricsRegistry:
    """The currently active registry (instrumented code reads this)."""
    return _active_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the active one; ``None`` restores the default.

    Returns:
        The previously active registry (so callers can restore it).
    """
    global _active_registry
    previous = _active_registry
    _active_registry = registry if registry is not None else _default_registry
    return previous


class use_registry:
    """Context manager installing a registry for the duration of a block::

        with use_registry(MetricsRegistry()) as reg:
            planner.plan(...)
        print(reg.snapshot())
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_registry(self._previous)
        return False
