"""Setup shim: enables `python setup.py develop` on environments without
the `wheel` package (PEP 660 editable installs need it; this path doesn't).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
