"""Extension experiments and the CLI runner."""

import math

import pytest

from repro.experiments import ext_scenarios, ext_sensitivity, ext_wear
from repro.experiments.common import TripLab, TripSetup
from repro.experiments.runner import EXPERIMENTS, main


class TestTripLab:
    @pytest.fixture(scope="class")
    def outcome(self):
        lab = TripLab(TripSetup(arrival_rate_vph=200.0, seed=3))
        return lab.run_departure(300.0)

    def test_all_profiles_present(self, outcome):
        assert set(outcome.traces) == set(TripLab.PROFILES)

    def test_all_traces_complete_route(self, outcome):
        for name, trace in outcome.traces.items():
            assert trace.distance_m > 4150.0, name

    def test_cap_covers_every_profile_plan(self, outcome):
        for name in ("baseline_dp", "proposed"):
            assert outcome.duration_s(name) <= outcome.trip_cap_s + 30.0

    def test_energy_accessor(self, outcome):
        for name in TripLab.PROFILES:
            assert outcome.energy_mah(name) > 0

    def test_headline_ordering_proposed_beats_fast(self, outcome):
        """Regression guard on the paper's headline: the optimized profile
        consumes clearly less than fast human driving at any departure."""
        assert outcome.energy_mah("proposed") < outcome.energy_mah("fast") * 0.95


class TestExtSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        config = ext_sensitivity.SensitivityConfig(
            errors=(-0.25, 0.0, 0.25), departures=(0.0, 30.0)
        )
        return ext_sensitivity.run(config)

    def test_rows_per_error(self, result):
        assert len(result.rows) == 3

    def test_zero_error_perfect_hits(self, result):
        zero = next(r for r in result.rows if r[0] == 0.0)
        assert zero[2] == 1.0
        assert zero[1] == pytest.approx(0.0)

    def test_shift_monotone_in_error(self, result):
        shifts = [r[1] for r in result.rows]
        assert shifts[0] < shifts[-1]

    def test_report_renders(self, result):
        text = ext_sensitivity.report(result)
        assert "forecast error" in text


class TestExtWear:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_wear.run(ext_wear.WearConfig(n_departures=1))

    def test_all_profiles_scored(self, result):
        assert set(result.reports) == set(TripLab.PROFILES)

    def test_fast_wears_most_throughput(self, result):
        assert (
            result.reports["fast"].throughput_ah
            >= result.reports["proposed"].throughput_ah
        )

    def test_trips_to_80pct_finite(self, result):
        for trips in result.trips_to_80pct.values():
            assert 0 < trips < 1e9

    def test_report_renders(self, result):
        assert "battery wear" in ext_wear.report(result)


class TestRunnerCli:
    def test_main_runs_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "completed" in out

    def test_main_rejects_unknown(self, capsys):
        assert main(["fig99"]) == 2

    def test_registry_contains_extensions(self):
        assert "ext-wear" in EXPERIMENTS
        assert "ext-sensitivity" in EXPERIMENTS
        assert "ext-scenarios" in EXPERIMENTS


class TestExtScenarios:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_scenarios.run()

    def test_every_pack_planned_feasibly(self, result):
        from repro.vehicle.scenarios import scenario_ids

        assert [row[0] for row in result.rows] == list(scenario_ids())
        for row in result.rows:
            assert row[5], f"scenario {row[0]} infeasible"
            assert math.isfinite(row[2]) and row[2] > 0

    def test_digests_pairwise_distinct(self, result):
        assert len(set(result.digests)) == len(result.digests)

    def test_store_sees_one_cold_build_per_pack(self, result):
        assert result.store.misses == len(result.rows)
        assert result.store.hits == 0

    def test_scenarios_shift_the_energy(self, result):
        energies = {row[0]: row[2] for row in result.rows}
        # Every perturbation in the builtin packs costs energy vs nominal
        # (cold, laden, hilly, headwind all add load).
        for sid, energy in energies.items():
            if sid != "nominal":
                assert energy > energies["nominal"]

    def test_report_renders(self, result):
        text = ext_scenarios.report(result)
        assert "scenario" in text
        assert "isolation holds" in text
