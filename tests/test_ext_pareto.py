"""Energy/time frontier extension."""

import numpy as np
import pytest

from repro.experiments import ext_pareto


@pytest.fixture(scope="module")
def result():
    config = ext_pareto.ParetoConfig(n_caps=5, cap_step_s=20.0)
    return ext_pareto.run(config)


class TestExtPareto:
    def test_points_collected(self, result):
        assert len(result.points) >= 4

    def test_achieved_trips_within_caps(self, result):
        for cap, trip, _ in result.points:
            assert trip <= cap + 1e-6

    def test_energy_non_increasing_along_frontier(self, result):
        energies = [p[2] for p in result.points]
        assert all(b <= a + 1.0 for a, b in zip(energies, energies[1:]))

    def test_floor_below_first_cap(self, result):
        assert result.min_feasible_trip_s <= result.points[0][0]

    def test_report_renders_chart(self, result):
        text = ext_pareto.report(result)
        assert "frontier" in text
        assert "trip-time budget" in text
