"""Traffic-data persistence: volume CSVs and SAE model archives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PredictionError
from repro.traffic import (
    SAEPredictor,
    VolumeGenerator,
    load_volume_csv,
    save_volume_csv,
    train_test_split_by_hour,
)
from repro.traffic.volume import VolumeSeries


class TestVolumeCsv:
    def test_roundtrip(self, tmp_path):
        series = VolumeGenerator(seed=5).generate(3)
        path = tmp_path / "data" / "volumes.csv"
        save_volume_csv(series, path)
        loaded = load_volume_csv(path)
        np.testing.assert_allclose(loaded.volumes_vph, series.volumes_vph, atol=1e-3)
        assert loaded.start_hour == series.start_hour

    def test_start_hour_preserved(self, tmp_path):
        series = VolumeSeries(np.asarray([10.0, 20.0]), start_hour=100)
        path = tmp_path / "v.csv"
        save_volume_csv(series, path)
        assert load_volume_csv(path).start_hour == 100

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("hour,volume_vph\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)

    def test_gap_rejected(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("hour,volume_vph\n0,10.0\n2,20.0\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)


class TestSaePersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        series = VolumeGenerator(seed=7).generate(21)
        train, test = train_test_split_by_hour(series, test_hours=48, window=12)
        model = SAEPredictor(
            hidden_sizes=(8, 4), pretrain_epochs=3, finetune_epochs=15, seed=0
        ).fit(train.features, train.targets)
        return model, test

    def test_roundtrip_predictions_identical(self, tmp_path, fitted):
        model, test = fitted
        path = tmp_path / "models" / "sae.npz"
        model.save(path)
        loaded = SAEPredictor.load(path)
        np.testing.assert_array_equal(
            loaded.predict(test.features), model.predict(test.features)
        )

    def test_loaded_model_reports_fitted(self, tmp_path, fitted):
        model, _ = fitted
        path = tmp_path / "sae.npz"
        model.save(path)
        assert SAEPredictor.load(path).is_fitted

    def test_hidden_sizes_restored(self, tmp_path, fitted):
        model, _ = fitted
        path = tmp_path / "sae.npz"
        model.save(path)
        assert SAEPredictor.load(path).hidden_sizes == (8, 4)

    def test_save_before_fit_rejected(self, tmp_path):
        with pytest.raises(PredictionError):
            SAEPredictor().save(tmp_path / "x.npz")
