"""Traffic-data persistence: volume CSVs and SAE model archives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PredictionError
from repro.traffic import (
    SAEPredictor,
    VolumeGenerator,
    load_volume_csv,
    save_volume_csv,
    train_test_split_by_hour,
)
from repro.traffic.volume import VolumeSeries


class TestVolumeCsv:
    def test_roundtrip(self, tmp_path):
        series = VolumeGenerator(seed=5).generate(3)
        path = tmp_path / "data" / "volumes.csv"
        save_volume_csv(series, path)
        loaded = load_volume_csv(path)
        np.testing.assert_allclose(loaded.volumes_vph, series.volumes_vph, atol=1e-3)
        assert loaded.start_hour == series.start_hour

    def test_start_hour_preserved(self, tmp_path):
        series = VolumeSeries(np.asarray([10.0, 20.0]), start_hour=100)
        path = tmp_path / "v.csv"
        save_volume_csv(series, path)
        assert load_volume_csv(path).start_hour == 100

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("hour,volume_vph\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)

    def test_gap_rejected(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("hour,volume_vph\n0,10.0\n2,20.0\n")
        with pytest.raises(ConfigurationError):
            load_volume_csv(path)


class TestSaePersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        series = VolumeGenerator(seed=7).generate(21)
        train, test = train_test_split_by_hour(series, test_hours=48, window=12)
        model = SAEPredictor(
            hidden_sizes=(8, 4), pretrain_epochs=3, finetune_epochs=15, seed=0
        ).fit(train.features, train.targets)
        return model, test

    def test_roundtrip_predictions_identical(self, tmp_path, fitted):
        model, test = fitted
        path = tmp_path / "models" / "sae.npz"
        model.save(path)
        loaded = SAEPredictor.load(path)
        np.testing.assert_array_equal(
            loaded.predict(test.features), model.predict(test.features)
        )

    def test_loaded_model_reports_fitted(self, tmp_path, fitted):
        model, _ = fitted
        path = tmp_path / "sae.npz"
        model.save(path)
        assert SAEPredictor.load(path).is_fitted

    def test_hidden_sizes_restored(self, tmp_path, fitted):
        model, _ = fitted
        path = tmp_path / "sae.npz"
        model.save(path)
        assert SAEPredictor.load(path).hidden_sizes == (8, 4)

    def test_save_before_fit_rejected(self, tmp_path):
        with pytest.raises(PredictionError):
            SAEPredictor().save(tmp_path / "x.npz")


class TestVolumeLoaderContract:
    """Loader failures surface as typed, located InputValidationError."""

    def test_missing_file_is_typed(self, tmp_path):
        from repro.errors import InputValidationError

        with pytest.raises(InputValidationError) as err:
            load_volume_csv(tmp_path / "absent.csv")
        assert err.value.source is not None and "absent.csv" in err.value.source

    def test_non_numeric_cell_names_the_row(self, tmp_path):
        from repro.errors import InputValidationError

        path = tmp_path / "junk.csv"
        path.write_text("hour,volume_vph\n0,10.0\n1,lots\n")
        with pytest.raises(InputValidationError) as err:
            load_volume_csv(path)
        assert err.value.row == 1
        assert isinstance(err.value, ConfigurationError)

    def test_negative_volume_clamped_only_in_repair(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.traffic.io import load_volume_csv_repaired

        path = tmp_path / "neg.csv"
        path.write_text("hour,volume_vph\n0,10.0\n1,-5.0\n2,20.0\n")
        with pytest.raises(InputValidationError):
            load_volume_csv(path)
        series, report = load_volume_csv_repaired(path)
        assert series.volumes_vph[1] == 0.0
        assert report

    def test_hour_gap_never_repaired(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.traffic.io import load_volume_csv_repaired

        path = tmp_path / "gap.csv"
        path.write_text("hour,volume_vph\n0,10.0\n2,20.0\n")
        with pytest.raises(InputValidationError):
            load_volume_csv_repaired(path)
