"""Krauss and IDM car-following models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.car_following import OPEN_ROAD_GAP_M, IdmModel, KraussModel


@pytest.fixture
def krauss():
    return KraussModel()


@pytest.fixture
def idm():
    return IdmModel()


class TestKraussSafeSpeed:
    def test_open_road_unbounded(self, krauss):
        assert krauss.safe_speed(0.0, OPEN_ROAD_GAP_M) == float("inf")

    def test_zero_gap_stationary_leader_means_stop(self, krauss):
        assert krauss.safe_speed(0.0, 0.0) == pytest.approx(0.0)

    def test_monotone_in_gap(self, krauss):
        gaps = np.linspace(0.0, 100.0, 11)
        speeds = [krauss.safe_speed(0.0, g) for g in gaps]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_monotone_in_leader_speed(self, krauss):
        assert krauss.safe_speed(10.0, 20.0) > krauss.safe_speed(0.0, 20.0)

    def test_stopping_guarantee(self, krauss):
        """Driving at v_safe and braking at b after tau stays within the gap."""
        gap = 35.0
        v = krauss.safe_speed(0.0, gap)
        travelled = v * krauss.tau_s + v * v / (2.0 * krauss.decel_ms2)
        assert travelled <= gap + 1e-6

    def test_negative_gap_clamped(self, krauss):
        assert krauss.safe_speed(0.0, -5.0) == pytest.approx(0.0)


class TestKraussNextSpeed:
    def test_accelerates_toward_desired_on_open_road(self, krauss):
        v = krauss.next_speed(10.0, 20.0, 0.0, OPEN_ROAD_GAP_M, dt_s=1.0)
        assert v == pytest.approx(10.0 + krauss.accel_ms2)

    def test_caps_at_desired(self, krauss):
        v = krauss.next_speed(19.5, 20.0, 0.0, OPEN_ROAD_GAP_M, dt_s=1.0)
        assert v == pytest.approx(20.0)

    def test_brakes_for_stationary_obstacle(self, krauss):
        v = krauss.next_speed(15.0, 20.0, 0.0, 20.0, dt_s=1.0)
        assert v < 15.0

    def test_never_negative(self, krauss):
        v = krauss.next_speed(1.0, 20.0, 0.0, 0.0, dt_s=1.0)
        assert v >= 0.0

    def test_sigma_dither_reduces_speed(self):
        noisy = KraussModel(sigma=0.5)
        clean = noisy.next_speed(10.0, 20.0, 0.0, OPEN_ROAD_GAP_M, 1.0, imperfection=0.0)
        dithered = noisy.next_speed(10.0, 20.0, 0.0, OPEN_ROAD_GAP_M, 1.0, imperfection=1.0)
        assert dithered < clean

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KraussModel(accel_ms2=0.0)
        with pytest.raises(ConfigurationError):
            KraussModel(sigma=1.5)


class TestIdm:
    def test_free_acceleration_positive_below_desired(self, idm):
        assert idm.acceleration(5.0, 15.0, 0.0, OPEN_ROAD_GAP_M) > 0.0

    def test_no_acceleration_at_desired(self, idm):
        assert idm.acceleration(15.0, 15.0, 0.0, OPEN_ROAD_GAP_M) == pytest.approx(0.0)

    def test_brakes_when_close(self, idm):
        assert idm.acceleration(10.0, 15.0, 0.0, 5.0) < 0.0

    def test_equilibrium_gap_keeps_speed(self, idm):
        v = 10.0
        s_eq = idm.min_gap_m + v * idm.headway_s
        accel = idm.acceleration(v, 1e9, v, s_eq)  # huge desired isolates gap term
        assert accel == pytest.approx(0.0, abs=0.05)

    def test_next_speed_floor(self, idm):
        assert idm.next_speed(0.5, 15.0, 0.0, 0.5, dt_s=1.0) >= 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdmModel(headway_s=0.0)
