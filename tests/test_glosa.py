"""Analytic GLOSA advisor: leg kinematics and advisory behaviour."""

import numpy as np
import pytest

from repro.core.constraints import check_profile
from repro.core.glosa import GlosaAdvisor, _leg_kinematics
from repro.errors import ConfigurationError
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


class TestLegKinematics:
    def test_pure_cruise(self):
        t, d_up, d_down, peak = _leg_kinematics(10.0, 10.0, 10.0, 500.0, 1.2, 1.2)
        assert t == pytest.approx(50.0)
        assert d_up == pytest.approx(0.0)
        assert peak == 10.0

    def test_trapezoid_from_rest_to_rest(self):
        # 0 -> 10 -> 0 over 500 m at 1.25 m/s^2: ramps 40 m each, 8 s each.
        t, d_up, d_down, peak = _leg_kinematics(0.0, 0.0, 10.0, 500.0, 1.25, 1.25)
        assert d_up == pytest.approx(40.0)
        assert d_down == pytest.approx(40.0)
        assert t == pytest.approx(8.0 + 8.0 + 420.0 / 10.0)

    def test_triangular_when_leg_too_short(self):
        t, d_up, d_down, peak = _leg_kinematics(0.0, 0.0, 30.0, 100.0, 1.0, 1.0)
        assert peak < 30.0
        assert d_up + d_down == pytest.approx(100.0, abs=0.5)

    def test_entry_slowdown_supported(self):
        # Entering faster than the chosen cruise: decelerate at a_down.
        t, d_up, _, peak = _leg_kinematics(15.0, 10.0, 10.0, 400.0, 1.2, 1.5)
        assert peak == 10.0
        assert d_up == pytest.approx((225.0 - 100.0) / (2 * 1.5))

    def test_time_monotone_in_cruise_speed(self):
        times = [
            _leg_kinematics(0.0, v, v, 800.0, 1.2, 1.2)[0] for v in (8.0, 12.0, 16.0)
        ]
        assert times[0] > times[1] > times[2]


class TestAdvisor:
    @pytest.fixture(scope="class")
    def green(self, us25):
        return GlosaAdvisor(us25)

    @pytest.fixture(scope="class")
    def queue_aware(self, us25):
        return GlosaAdvisor(us25, arrival_rates=RATE)

    def test_profile_is_constraint_feasible(self, green, us25):
        plan = green.plan(0.0)
        assert check_profile(plan.profile, us25).ok

    def test_green_arrivals_are_green(self, green, us25):
        plan = green.plan(0.0)
        for pos, arrival in plan.signal_arrivals.items():
            site = next(s for s in us25.signals if s.position_m == pos)
            assert site.light.is_green(arrival)

    def test_queue_aware_arrivals_after_t_star(self, queue_aware, us25):
        plan = queue_aware.plan(0.0)
        for pos, arrival in plan.signal_arrivals.items():
            model = queue_aware._queue_models[pos]
            windows = model.empty_windows(0.0, 900.0, RATE)
            assert any(w.contains(arrival) for w in windows), (pos, arrival)

    def test_queue_aware_never_earlier_than_green(self, green, queue_aware):
        g = green.plan(0.0)
        q = queue_aware.plan(0.0)
        for pos in g.signal_arrivals:
            assert q.signal_arrivals[pos] >= g.signal_arrivals[pos] - 1e-6

    def test_stop_free_on_reachable_windows(self, queue_aware):
        plan = queue_aware.plan(0.0)
        assert plan.stop_free

    def test_departure_changes_advice(self, green):
        a = green.plan(0.0)
        b = green.plan(25.0)
        assert a.signal_arrivals != b.signal_arrivals

    def test_dp_beats_glosa_at_equal_budget(self, queue_aware, us25):
        from repro.core.planner import PlannerConfig, QueueAwareDpPlanner

        plan = queue_aware.plan(0.0)
        planner = QueueAwareDpPlanner(
            us25,
            arrival_rates=RATE,
            config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
        )
        solution = planner.plan(
            0.0, max_trip_time_s=plan.profile.total_time_s + 1.0
        )
        assert solution.energy_mah <= plan.profile.energy().net_mah * 1.01

    def test_unreachable_window_falls_back_to_stop(self, us25):
        # All-red-but-a-sliver signals make windows unreachable from some
        # departures; the advisor must stop-and-wait, not crash.
        from repro.route.us25 import us25_greenville_segment

        road = us25_greenville_segment(red_s=55.0, green_s=5.0)
        advisor = GlosaAdvisor(road)
        found_wait = False
        for depart in range(0, 60, 10):
            plan = advisor.plan(float(depart))
            assert plan.profile.total_distance_m == pytest.approx(4200.0)
            found_wait = found_wait or not plan.stop_free
        assert found_wait

    def test_validation(self, us25):
        with pytest.raises(ConfigurationError):
            GlosaAdvisor(us25, cruise_accel_ms2=0.0)
        with pytest.raises(ConfigurationError):
            GlosaAdvisor(us25, window_margin_s=-1.0)


class TestPlanFromState:
    """Mid-route advisories (the ladder's GLOSA tier)."""

    @pytest.fixture(scope="class")
    def green(self, us25):
        return GlosaAdvisor(us25)

    def test_suffix_covers_remaining_route(self, green, us25):
        plan = green.plan(
            start_time_s=130.0, start_position_m=2000.0, start_speed_ms=12.0
        )
        profile = plan.profile
        assert profile.positions_m[0] == pytest.approx(2000.0)
        assert profile.positions_m[-1] == pytest.approx(us25.length_m)
        assert profile.arrival_times_s[0] == pytest.approx(130.0)
        assert profile.speeds_ms[0] == pytest.approx(12.0)

    def test_only_signals_ahead_advised(self, green):
        plan = green.plan(
            start_time_s=130.0, start_position_m=2000.0, start_speed_ms=12.0
        )
        assert set(plan.signal_arrivals) == {3460.0}

    def test_mid_route_arrivals_are_green(self, green, us25):
        plan = green.plan(
            start_time_s=130.0, start_position_m=2000.0, start_speed_ms=12.0
        )
        for pos, arrival in plan.signal_arrivals.items():
            site = next(s for s in us25.signals if s.position_m == pos)
            assert site.light.is_green(arrival)

    def test_default_state_unchanged(self, green):
        assert (
            green.plan(0.0).signal_arrivals
            == green.plan(0.0, start_position_m=0.0, start_speed_ms=0.0).signal_arrivals
        )

    def test_state_validation(self, green, us25):
        with pytest.raises(ConfigurationError):
            green.plan(0.0, start_position_m=-1.0)
        with pytest.raises(ConfigurationError):
            green.plan(0.0, start_position_m=us25.length_m)
        with pytest.raises(ConfigurationError):
            green.plan(0.0, start_speed_ms=-1.0)
