"""Dispatch layer: single-flight coalescing, deadlines, fleet bit-identity."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cloud import (
    CloudPlannerService,
    FleetStudy,
    PlanDispatcher,
    PlanRequest,
    PlanResponse,
)
from repro.core.planner import QueueAwareDpPlanner
from repro.errors import (
    ConfigurationError,
    DispatchDeadlineError,
    PlanningFailedError,
)
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture
def fresh_service(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


def _response(vehicle_id: str) -> PlanResponse:
    return PlanResponse(
        vehicle_id=vehicle_id,
        profile=None,
        energy_mah=1.0,
        trip_time_s=1.0,
        cache_hit=False,
        compute_time_s=0.0,
    )


class StubService:
    """Duck-typed service with controllable keys, blocking and failures."""

    def __init__(self, key=None, block=None, fail_first=False):
        self.key = key
        self.block = block  # threading.Event the request waits on
        self.fail_first = fail_first
        self.calls = 0
        self._lock = threading.Lock()

    def coalesce_key(self, req):
        return self.key

    def request(self, req):
        with self._lock:
            self.calls += 1
            first = self.calls == 1
        if self.block is not None:
            assert self.block.wait(timeout=10.0), "stub never unblocked"
        if self.fail_first and first:
            raise PlanningFailedError("leader solve failed")
        return _response(req.vehicle_id)


class TestSingleFlight:
    def test_n_identical_concurrent_requests_run_one_solve(self, fresh_service):
        """The coalescing guarantee: N same-phase requests, exactly 1 DP."""
        service = fresh_service
        n = 6
        requests = [
            PlanRequest(f"ev{i}", depart_s=100.0 + 60.0 * i, max_trip_time_s=320.0)
            for i in range(n)  # same phase (60 s period), same budget
        ]
        with PlanDispatcher(service, workers=4) as dispatcher:
            responses = dispatcher.submit_many(requests)
        assert len(responses) == n
        # Exactly one solve: one miss, the rest warm-cache hits.
        assert service.stats.cache_misses == 1
        assert service.stats.cache_hits == n - 1
        assert sum(1 for r in responses if not r.cache_hit) == 1
        # The invariant survives the dispatcher.
        stats = service.stats
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors
        dstats = dispatcher.stats()
        assert dstats.leaders == 1
        assert dstats.coalesced == n - 1
        assert dstats.completed == n
        assert dstats.in_flight == 0

    def test_first_submitted_request_is_the_leader(self, fresh_service):
        """Leadership is claimed at submission, so ev0 solves — like serial."""
        with PlanDispatcher(fresh_service, workers=4) as dispatcher:
            responses = dispatcher.submit_many(
                [
                    PlanRequest(f"ev{i}", depart_s=100.0, max_trip_time_s=320.0)
                    for i in range(4)
                ]
            )
        assert not responses[0].cache_hit
        assert all(r.cache_hit for r in responses[1:])
        # Responses keep per-request identity.
        assert [r.vehicle_id for r in responses] == [f"ev{i}" for i in range(4)]

    def test_distinct_keys_do_not_coalesce(self, fresh_service):
        with PlanDispatcher(fresh_service, workers=2) as dispatcher:
            dispatcher.submit_many(
                [
                    PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0),
                    PlanRequest("b", depart_s=130.0, max_trip_time_s=320.0),
                ]
            )
        stats = dispatcher.stats()
        assert stats.leaders == 2
        assert stats.coalesced == 0

    def test_leader_failure_does_not_fail_followers(self):
        stub = StubService(key="k", fail_first=True)
        with PlanDispatcher(stub, workers=2) as dispatcher:
            requests = [PlanRequest(f"v{i}", depart_s=10.0) for i in range(3)]
            outcomes = dispatcher.submit_many(requests, return_exceptions=True)
        failures = [o for o in outcomes if isinstance(o, PlanningFailedError)]
        served = [o for o in outcomes if isinstance(o, PlanResponse)]
        # Only the leader failed; each follower fell back to its own call.
        assert len(failures) == 1
        assert len(served) == 2

    def test_submit_many_reraises_first_error_by_default(self):
        stub = StubService(key=None, fail_first=True)
        with PlanDispatcher(stub, workers=1) as dispatcher:
            with pytest.raises(PlanningFailedError):
                dispatcher.submit_many(
                    [PlanRequest(f"v{i}", depart_s=10.0) for i in range(3)]
                )

    def test_followers_of_a_failed_leader_are_not_counted_coalesced(self):
        """Regression: ``coalesced`` used to be claimed before serving.

        When the leader's solve failed, each follower fell back to a full
        solve of its own — yet the books still said the solves were saved.
        The counter now reflects what actually happened: a follower is
        coalesced only when its response came from the leader's warm cache.
        """
        gate = threading.Event()
        stub = StubService(key="k", block=gate, fail_first=True)
        with PlanDispatcher(stub, workers=1) as dispatcher:
            futures = [
                dispatcher.submit(PlanRequest(f"v{i}", depart_s=10.0))
                for i in range(3)
            ]
            gate.set()  # every submission coalesced before the leader fails
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=10.0))
                except PlanningFailedError as exc:
                    outcomes.append(exc)
        assert isinstance(outcomes[0], PlanningFailedError)
        assert all(isinstance(o, PlanResponse) for o in outcomes[1:])
        stats = dispatcher.stats()
        assert stats.leaders == 1
        assert stats.coalesced == 0  # both followers full-solved
        assert stats.errors == 1
        assert stats.completed == 2
        assert stats.in_flight == 0


class TestDeadlines:
    def test_queued_request_fails_fast_on_expired_deadline(self):
        gate = threading.Event()
        stub = StubService(key=None, block=gate)
        dispatcher = PlanDispatcher(stub, workers=1)
        try:
            blocker = dispatcher.submit(PlanRequest("slow", depart_s=10.0))
            queued = dispatcher.submit(
                PlanRequest("late", depart_s=10.0), deadline_s=0.05
            )
            time.sleep(0.15)  # let the deadline lapse while queued
            gate.set()
            blocker.result(timeout=10.0)
            with pytest.raises(DispatchDeadlineError) as excinfo:
                queued.result(timeout=10.0)
            assert excinfo.value.vehicle_id == "late"
        finally:
            gate.set()
            dispatcher.shutdown()
        stats = dispatcher.stats()
        assert stats.deadline_exceeded == 1
        assert stats.errors == 1
        assert stats.completed == 1

    def test_follower_times_out_waiting_on_a_stuck_leader(self):
        gate = threading.Event()
        stub = StubService(key="k", block=gate)
        dispatcher = PlanDispatcher(stub, workers=2)
        try:
            leader = dispatcher.submit(PlanRequest("leader", depart_s=10.0))
            follower = dispatcher.submit(
                PlanRequest("follower", depart_s=10.0), deadline_s=0.05
            )
            with pytest.raises(DispatchDeadlineError):
                follower.result(timeout=10.0)
            gate.set()
            assert leader.result(timeout=10.0).vehicle_id == "leader"
        finally:
            gate.set()
            dispatcher.shutdown()

    def test_expired_leader_releases_its_followers(self):
        """Regression: the leader's queued-deadline check used to raise
        *before* the flight bookkeeping's try/finally, so the flight was
        never marked done and a follower with no deadline of its own hung
        forever on it.
        """
        gate = threading.Event()

        class Stub:
            """Keyless blocker to jam the worker; everyone else shares a key."""

            def coalesce_key(self, req):
                return None if req.vehicle_id == "blocker" else "k"

            def request(self, req):
                if req.vehicle_id == "blocker":
                    assert gate.wait(timeout=10.0), "stub never unblocked"
                return _response(req.vehicle_id)

        dispatcher = PlanDispatcher(Stub(), workers=1)
        try:
            blocker = dispatcher.submit(PlanRequest("blocker", depart_s=10.0))
            leader = dispatcher.submit(
                PlanRequest("leader", depart_s=10.0), deadline_s=0.05
            )
            follower = dispatcher.submit(PlanRequest("follower", depart_s=10.0))
            time.sleep(0.15)  # the leader's deadline lapses while queued
            gate.set()
            blocker.result(timeout=10.0)
            with pytest.raises(DispatchDeadlineError):
                leader.result(timeout=10.0)
            # The deadline-free follower must fall back to its own solve,
            # not wait forever on the flight the leader abandoned.
            assert follower.result(timeout=10.0).vehicle_id == "follower"
        finally:
            gate.set()
            dispatcher.shutdown()
        stats = dispatcher.stats()
        assert stats.deadline_exceeded == 1
        assert stats.errors == 1
        assert stats.completed == 2
        assert stats.in_flight == 0

    def test_invalid_deadline_and_workers_rejected(self, fresh_service):
        with pytest.raises(ConfigurationError):
            PlanDispatcher(fresh_service, workers=0)
        with PlanDispatcher(fresh_service, workers=1) as dispatcher:
            with pytest.raises(ConfigurationError):
                dispatcher.submit(PlanRequest("a", depart_s=1.0), deadline_s=0.0)


class TestFleetConcurrency:
    def test_dispatched_fleet_is_bit_identical_to_serial(self, us25, coarse_config):
        def build():
            planner = QueueAwareDpPlanner(
                us25, arrival_rates=RATE, config=coarse_config
            )
            return CloudPlannerService(planner)

        serial = FleetStudy(build(), us25, fleet_rate_vph=80.0, seed=5).run(
            duration_s=900.0
        )
        threaded = FleetStudy(
            build(), us25, fleet_rate_vph=80.0, seed=5, workers=4
        ).run(duration_s=900.0)

        # Bit identity, not approximation: same solves, same shifts.
        assert threaded.planned_energy_mah == serial.planned_energy_mah
        assert threaded.human_energy_mah == serial.human_energy_mah
        assert threaded.mean_trip_time_s == serial.mean_trip_time_s
        assert threaded.n_vehicles == serial.n_vehicles
        assert threaded.n_failed == serial.n_failed
        # Same serving economics.
        assert threaded.service.cache_hits == serial.service.cache_hits
        assert threaded.service.cache_misses == serial.service.cache_misses
        # The dispatcher actually ran and its books balance.
        assert threaded.dispatch is not None
        assert threaded.dispatch.submitted == serial.service.requests
        assert threaded.dispatch.in_flight == 0
        assert serial.dispatch is None

    def test_wire_roundtrip_fleet_is_bit_identical(self, us25, coarse_config):
        def build():
            planner = QueueAwareDpPlanner(
                us25, arrival_rates=RATE, config=coarse_config
            )
            return CloudPlannerService(planner)

        plain = FleetStudy(build(), us25, fleet_rate_vph=60.0, seed=3).run(
            duration_s=600.0
        )
        wired = FleetStudy(
            build(), us25, fleet_rate_vph=60.0, seed=3, workers=2, wire_roundtrip=True
        ).run(duration_s=600.0)
        assert wired.planned_energy_mah == plain.planned_energy_mah
        assert wired.mean_trip_time_s == plain.mean_trip_time_s

    def test_fleet_result_stats_are_snapshots(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        service = CloudPlannerService(planner)
        study = FleetStudy(service, us25, fleet_rate_vph=80.0, seed=5)
        result = study.run(duration_s=900.0)
        before = (result.service.requests, result.cache.lookups)
        # Later traffic through the same service must not rewrite history.
        service.request(PlanRequest("late", depart_s=100.0, max_trip_time_s=320.0))
        assert result.service.requests == before[0]
        assert result.cache.lookups == before[1]

    def test_fleet_workers_validation(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        service = CloudPlannerService(planner)
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, workers=-1)


def _build_service(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


def _serve_serially(service, requests):
    outcomes = []
    for req in requests:
        try:
            outcomes.append(service.request(req))
        except Exception as exc:  # noqa: BLE001 - an outcome, not a crash
            outcomes.append(exc)
    return outcomes


def _assert_same_outcomes(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        if isinstance(w, Exception):
            assert isinstance(g, Exception)
            assert str(g) == str(w)
            continue
        assert isinstance(g, PlanResponse)
        assert g.vehicle_id == w.vehicle_id
        assert g.energy_mah == w.energy_mah
        assert g.trip_time_s == w.trip_time_s
        assert g.cache_hit == w.cache_hit
        assert np.array_equal(g.profile.positions_m, w.profile.positions_m)
        assert np.array_equal(g.profile.speeds_ms, w.profile.speeds_ms)


class TestMicroBatching:
    def test_batched_dispatch_is_bit_identical_to_serial(self, us25, coarse_config):
        """Budget-less fleet requests through the batcher == a serial loop."""
        departs = [100.0, 111.0, 123.0, 160.0, 171.0, 280.0]  # phase repeats
        requests = [
            PlanRequest(f"ev{i}", depart_s=d) for i, d in enumerate(departs)
        ]
        serial = _serve_serially(_build_service(us25, coarse_config), requests)

        batched_service = _build_service(us25, coarse_config)
        with PlanDispatcher(
            batched_service, workers=2, batch_window_s=0.05
        ) as dispatcher:
            outcomes = dispatcher.submit_many(requests, return_exceptions=True)
        _assert_same_outcomes(outcomes, serial)
        stats = dispatcher.stats()
        assert stats.batched == len(requests)
        assert stats.batches >= 1
        assert stats.completed == len(requests)
        assert stats.in_flight == 0
        # A first-of-key request counts as a leader, later same-key arrivals
        # served from the warm cache count as coalesced — like thread mode.
        assert stats.leaders + stats.coalesced == len(requests)
        assert stats.coalesced == sum(1 for o in outcomes if o.cache_hit)
        # Service-side economics match the serial story exactly.
        assert batched_service.stats.cache_hits > 0

    def test_keyless_requests_bypass_the_batcher(self):
        stub = StubService(key=None)
        with PlanDispatcher(stub, workers=2, batch_window_s=0.05) as dispatcher:
            outcomes = dispatcher.submit_many(
                [PlanRequest(f"v{i}", depart_s=10.0) for i in range(3)]
            )
        assert len(outcomes) == 3
        stats = dispatcher.stats()
        assert stats.batched == 0  # uncacheable work never waits for a window
        assert stats.batches == 0
        assert stats.completed == 3

    def test_micro_batching_rejects_the_process_backend(self, fresh_service):
        with pytest.raises(ConfigurationError):
            PlanDispatcher(
                fresh_service, workers=2, backend="process", batch_window_s=0.05
            )
        with pytest.raises(ConfigurationError):
            PlanDispatcher(fresh_service, workers=2, batch_window_s=0.0)
        with pytest.raises(ConfigurationError):
            PlanDispatcher(fresh_service, workers=2, backend="fiber")


class TestProcessBackend:
    def test_same_key_stress_is_bit_identical_to_serial(self, us25, coarse_config):
        """Many same-key requests against worker processes.

        Key-sharded dispatch sends every same-key request to the same
        worker, whose private cache then behaves exactly like the serial
        service's: one cold solve, the rest warm phase-shifted hits.
        """
        n = 10
        requests = [
            PlanRequest(f"ev{i}", depart_s=100.0 + 60.0 * i, max_trip_time_s=320.0)
            for i in range(n)  # same phase (60 s period), same budget
        ]
        serial = _serve_serially(_build_service(us25, coarse_config), requests)

        with PlanDispatcher(
            _build_service(us25, coarse_config), workers=2, backend="process"
        ) as dispatcher:
            outcomes = dispatcher.submit_many(requests, return_exceptions=True)
        _assert_same_outcomes(outcomes, serial)
        stats = dispatcher.stats()
        assert stats.completed == n
        assert stats.coalesced == n - 1  # one cold solve in the shard's worker
        assert stats.errors == 0
        assert stats.in_flight == 0
