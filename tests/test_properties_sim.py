"""Property-based tests of the microsimulator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone
from repro.signal.light import TrafficLight
from repro.sim.car_following import IdmModel, KraussModel
from repro.sim.simulator import CorridorSimulator


@st.composite
def scenarios(draw):
    red = draw(st.floats(min_value=10.0, max_value=40.0))
    green = draw(st.floats(min_value=10.0, max_value=40.0))
    headway = draw(st.floats(min_value=3.0, max_value=20.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    road = RoadSegment(
        name="prop road",
        length_m=1200.0,
        zones=[SpeedLimitZone(0.0, 1200.0, v_max_ms=15.0, v_min_ms=8.0)],
        signals=[
            SignalSite(
                position_m=600.0,
                light=TrafficLight(red_s=red, green_s=green),
                turn_ratio=0.8,
            )
        ],
    )
    arrivals = np.arange(0.0, 200.0, headway)
    return road, arrivals, seed


class TestSimulatorProperties:
    @given(data=scenarios())
    @settings(max_examples=15, deadline=None)
    def test_no_collisions_ever(self, data):
        road, arrivals, seed = data
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=seed)
        for _ in range(500):
            sim.step()
            for leader, follower in zip(sim._vehicles, sim._vehicles[1:]):
                assert follower.position_m <= leader.rear_m + 1e-6

    @given(data=scenarios())
    @settings(max_examples=15, deadline=None)
    def test_positions_monotone_per_vehicle(self, data):
        road, arrivals, seed = data
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=seed)
        last_pos = {}
        for _ in range(400):
            sim.step()
            for veh in sim._vehicles:
                prev = last_pos.get(veh.vehicle_id, -1.0)
                assert veh.position_m >= prev - 1e-9
                last_pos[veh.vehicle_id] = veh.position_m

    @given(data=scenarios())
    @settings(max_examples=15, deadline=None)
    def test_vehicle_accounting(self, data):
        road, arrivals, seed = data
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=seed)
        result = sim.run(500.0)
        assert result.vehicles_exited + len(sim._vehicles) == result.vehicles_entered
        assert result.vehicles_entered <= len(arrivals)

    @given(data=scenarios())
    @settings(max_examples=10, deadline=None)
    def test_idm_backend_also_collision_free(self, data):
        road, arrivals, seed = data
        sim = CorridorSimulator(
            road, arrivals_s=arrivals, seed=seed, car_following=IdmModel()
        )
        for _ in range(400):
            sim.step()
            for leader, follower in zip(sim._vehicles, sim._vehicles[1:]):
                assert follower.position_m <= leader.rear_m + 1e-6

    @given(data=scenarios())
    @settings(max_examples=10, deadline=None)
    def test_speeds_bounded(self, data):
        road, arrivals, seed = data
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=seed)
        for _ in range(400):
            sim.step()
            for veh in sim._vehicles:
                assert 0.0 <= veh.speed_ms <= 15.0 + 1e-6
