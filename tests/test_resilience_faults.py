"""Deterministic fault models: schedules, detectors, forecasts, drift."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.faults import (
    CloudFaultModel,
    DetectorFaultModel,
    FaultPlan,
    FaultyLoopDetector,
    ForecastFaultModel,
    OutageWindow,
    SignalDriftModel,
    hash_uniform,
    schedule_bytes,
)
from repro.sim.detectors import LoopDetector
from repro.traffic.volume import VolumeSeries


class TestHashUniform:
    def test_deterministic(self):
        assert hash_uniform(7, "drop", 3, 1) == hash_uniform(7, "drop", 3, 1)

    def test_in_unit_interval(self):
        draws = [hash_uniform(1, "x", i) for i in range(200)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_key_sensitivity(self):
        assert hash_uniform(7, "drop", 3) != hash_uniform(7, "drop", 4)
        assert hash_uniform(7, "drop", 3) != hash_uniform(8, "drop", 3)

    def test_roughly_uniform(self):
        draws = [hash_uniform(0, "u", i) for i in range(2000)]
        assert 0.45 < float(np.mean(draws)) < 0.55


class TestCloudFaultModel:
    def test_schedule_bytes_identical_for_same_seed(self):
        a = CloudFaultModel(drop_rate=0.3, latency_jitter_s=0.2, seed=42)
        b = CloudFaultModel(drop_rate=0.3, latency_jitter_s=0.2, seed=42)
        assert schedule_bytes(a, 100, attempts=3) == schedule_bytes(b, 100, attempts=3)

    def test_schedule_bytes_differ_across_seeds(self):
        a = CloudFaultModel(drop_rate=0.3, latency_jitter_s=0.2, seed=42)
        b = CloudFaultModel(drop_rate=0.3, latency_jitter_s=0.2, seed=43)
        assert schedule_bytes(a, 100) != schedule_bytes(b, 100)

    def test_zero_rate_never_drops(self):
        model = CloudFaultModel(drop_rate=0.0, seed=1)
        assert not any(d.dropped for d in model.schedule(50, attempts=2))

    def test_full_rate_always_drops(self):
        model = CloudFaultModel(drop_rate=1.0, seed=1)
        assert all(d.dropped for d in model.schedule(50))

    def test_drop_fraction_tracks_rate(self):
        model = CloudFaultModel(drop_rate=0.4, seed=3)
        dropped = sum(d.dropped for d in model.schedule(2000))
        assert 0.35 < dropped / 2000 < 0.45

    def test_outage_window_forces_drops(self):
        model = CloudFaultModel(outages=(OutageWindow(100.0, 200.0),), seed=0)
        inside = model.evaluate(0, 0, 150.0)
        outside = model.evaluate(0, 0, 250.0)
        assert inside.dropped and inside.in_outage
        assert not outside.dropped

    def test_latency_includes_base_and_bounded_jitter(self):
        model = CloudFaultModel(latency_base_s=0.5, latency_jitter_s=0.1, seed=2)
        latencies = [d.latency_s for d in model.schedule(200)]
        assert all(lat >= 0.5 for lat in latencies)
        assert max(latencies) <= 0.5 + 0.1 * 20.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CloudFaultModel(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            CloudFaultModel(latency_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            OutageWindow(10.0, 10.0)


class TestFaultyLoopDetector:
    def _cross(self, detector, vehicle_id, t0=0.0):
        detector.observe(t0, vehicle_id, 90.0)
        detector.observe(t0 + 1.0, vehicle_id, 110.0)

    def test_no_fault_matches_pristine_detector(self):
        pristine = LoopDetector(position_m=100.0, window_s=60.0)
        faulty = FaultyLoopDetector(position_m=100.0, window_s=60.0, fault=None)
        for i in range(20):
            self._cross(pristine, f"v{i}", t0=i)
            self._cross(faulty, f"v{i}", t0=i)
        assert faulty.count_in_window(0) == pristine.count_in_window(0) == 20

    def test_full_dropout_counts_nothing(self):
        fault = DetectorFaultModel(dropout_rate=1.0, seed=5)
        detector = FaultyLoopDetector(position_m=100.0, fault=fault)
        for i in range(20):
            self._cross(detector, f"v{i}", t0=i)
        assert detector.count_in_window(0) == 0

    def test_partial_dropout_loses_some(self):
        fault = DetectorFaultModel(dropout_rate=0.5, seed=5)
        detector = FaultyLoopDetector(position_m=100.0, fault=fault)
        for i in range(100):
            self._cross(detector, f"v{i}", t0=0.0)
        assert 20 < detector.count_in_window(0) < 80

    def test_noise_adds_spurious_counts(self):
        fault = DetectorFaultModel(noise_vph=120.0, seed=5)
        detector = FaultyLoopDetector(position_m=100.0, window_s=60.0, fault=fault)
        # 120 vph over a 60 s window = 2 spurious counts, zero real ones.
        assert detector.count_in_window(0) == 2

    def test_flow_series_reflects_faults(self):
        fault = DetectorFaultModel(noise_vph=60.0, seed=1)
        detector = FaultyLoopDetector(position_m=100.0, window_s=60.0, fault=fault)
        series = detector.flow_series(3)
        assert float(series.volumes_vph[0]) == pytest.approx(60.0)

    def test_dropout_is_deterministic(self):
        def counts(seed):
            fault = DetectorFaultModel(dropout_rate=0.5, seed=seed)
            detector = FaultyLoopDetector(position_m=100.0, fault=fault)
            for i in range(50):
                self._cross(detector, f"v{i}", t0=0.0)
            return detector.count_in_window(0)

        assert counts(9) == counts(9)


class TestForecastFaultModel:
    def test_zero_model_is_identity(self):
        fault = ForecastFaultModel()
        degraded = fault.degrade_rate(0.05)
        assert degraded(0.0) == pytest.approx(0.05)
        assert degraded(999.0) == pytest.approx(0.05)

    def test_staleness_freezes_between_refreshes(self):
        fault = ForecastFaultModel(staleness_s=600.0)
        degraded = fault.degrade_rate(lambda t: t)
        assert degraded(0.0) == degraded(599.0) == 0.0
        assert degraded(600.0) == degraded(1100.0) == 600.0

    def test_corruption_bounded(self):
        fault = ForecastFaultModel(corruption_pct=0.2, seed=4)
        degraded = fault.degrade_rate(1.0)
        assert 0.8 <= degraded(0.0) <= 1.2

    def test_degrade_volumes_shape_and_bounds(self):
        fault = ForecastFaultModel(corruption_pct=0.3, seed=4)
        series = VolumeSeries(np.full(6, 100.0))
        degraded = fault.degrade_volumes(series)
        assert len(degraded.volumes_vph) == 6
        assert np.all(degraded.volumes_vph >= 70.0)
        assert np.all(degraded.volumes_vph <= 130.0)
        assert not np.allclose(degraded.volumes_vph, 100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ForecastFaultModel(corruption_pct=1.0)
        with pytest.raises(ConfigurationError):
            ForecastFaultModel(staleness_s=-1.0)


class TestSignalDriftModel:
    def test_zero_drift_returns_same_road(self, us25):
        assert SignalDriftModel(max_drift_s=0.0).drift_road(us25) is us25

    def test_drift_bounded_and_applied(self, us25):
        model = SignalDriftModel(max_drift_s=5.0, seed=11)
        drifted = model.drift_road(us25)
        assert len(drifted.signals) == len(us25.signals)
        shifts = [
            d.light.offset_s - o.light.offset_s
            for d, o in zip(drifted.signals, us25.signals)
        ]
        assert all(abs(s) <= 5.0 for s in shifts)
        assert any(abs(s) > 0.0 for s in shifts)

    def test_drift_deterministic(self, us25):
        a = SignalDriftModel(max_drift_s=5.0, seed=11).drift_road(us25)
        b = SignalDriftModel(max_drift_s=5.0, seed=11).drift_road(us25)
        assert [s.light.offset_s for s in a.signals] == [
            s.light.offset_s for s in b.signals
        ]

    def test_timing_preserved_otherwise(self, us25):
        drifted = SignalDriftModel(max_drift_s=5.0, seed=11).drift_road(us25)
        for d, o in zip(drifted.signals, us25.signals):
            assert d.light.cycle_s == o.light.cycle_s
            assert d.position_m == o.position_m


class TestFaultPlan:
    def test_default_injects_nothing(self):
        assert FaultPlan().injects_nothing

    def test_seeded_plan_reports_active(self):
        plan = FaultPlan.seeded(3, drop_rate=0.5)
        assert not plan.injects_nothing
        assert plan.cloud.drop_rate == 0.5

    def test_seeded_zero_rates_quiet(self):
        assert FaultPlan.seeded(3).injects_nothing
