"""DP cost building blocks: segment energy tables and window sets."""

import numpy as np
import pytest

from repro.core.cost import SegmentEnergyTable, WindowSet
from repro.signal.queue import QueueWindow
from repro.vehicle.dynamics import LongitudinalModel


@pytest.fixture(scope="module")
def table():
    model = LongitudinalModel()
    v_grid = np.arange(0.0, 16.0, 1.0)
    return SegmentEnergyTable(
        model, v_grid, distance_m=50.0, grade_rad=0.0, a_min=-1.5, a_max=2.5
    )


class TestSegmentEnergyTable:
    def test_infeasible_acceleration_is_inf(self, table):
        # 0 -> 15 m/s over 50 m needs a = 2.25... within a_max 2.5; but
        # 0 -> 16 not in grid. Use 15 -> 0: a = -2.25 < a_min.
        assert np.isinf(table.energy_j[15, 0])

    def test_zero_to_zero_is_inf(self, table):
        assert np.isinf(table.energy_j[0, 0])

    def test_cruise_entry_matches_model(self, table):
        model = LongitudinalModel()
        expected = model.segment_energy_j(10.0, 10.0, 50.0)
        assert table.energy_j[10, 10] == pytest.approx(expected)

    def test_travel_time(self, table):
        assert table.travel_s[10, 10] == pytest.approx(5.0)
        assert table.travel_s[5, 10] == pytest.approx(50.0 / 7.5)

    def test_successors_obey_accel_band(self, table):
        succ = table.successors(10)
        accels = (np.square(succ.astype(float)) - 100.0) / (2 * 50.0)
        assert np.all(accels >= -1.5 - 1e-9)
        assert np.all(accels <= 2.5 + 1e-9)

    def test_feasible_matrix_matches_energy(self, table):
        assert np.all(np.isfinite(table.energy_j[table.feasible]))
        assert np.all(np.isinf(table.energy_j[~table.feasible]))

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            SegmentEnergyTable(
                LongitudinalModel(), np.arange(3.0), 0.0, 0.0, -1.5, 2.5
            )

    def test_uphill_costs_more(self):
        model = LongitudinalModel()
        v_grid = np.arange(0.0, 16.0, 1.0)
        flat = SegmentEnergyTable(model, v_grid, 50.0, 0.0, -1.5, 2.5)
        hill = SegmentEnergyTable(model, v_grid, 50.0, np.arctan(0.04), -1.5, 2.5)
        assert hill.energy_j[10, 10] > flat.energy_j[10, 10]


class TestWindowSet:
    def test_contains_vectorized(self):
        windows = WindowSet([QueueWindow(10.0, 20.0), QueueWindow(30.0, 40.0)])
        times = np.asarray([5.0, 10.0, 15.0, 20.0, 35.0, 45.0])
        np.testing.assert_array_equal(
            windows.contains(times), [False, True, True, False, True, False]
        )

    def test_merges_overlapping(self):
        windows = WindowSet([QueueWindow(10.0, 25.0), QueueWindow(20.0, 40.0)])
        assert len(windows) == 1
        assert windows.contains(np.asarray([24.0, 39.0])).all()

    def test_sorts_unordered_input(self):
        windows = WindowSet([QueueWindow(30.0, 40.0), QueueWindow(0.0, 10.0)])
        merged = windows.as_queue_windows()
        assert merged[0].start_s == 0.0
        assert merged[1].start_s == 30.0

    def test_shrunk(self):
        windows = WindowSet([QueueWindow(10.0, 20.0)]).shrunk(2.0)
        assert windows.contains(np.asarray([12.5]))[0]
        assert not windows.contains(np.asarray([11.0]))[0]
        assert not windows.contains(np.asarray([18.5]))[0]

    def test_shrunk_collapses_small_windows(self):
        windows = WindowSet([QueueWindow(10.0, 13.0)]).shrunk(2.0)
        assert windows.is_empty

    def test_shrunk_rejects_negative(self):
        with pytest.raises(ValueError):
            WindowSet([]).shrunk(-1.0)

    def test_empty_set_contains_nothing(self):
        windows = WindowSet([])
        assert windows.is_empty
        assert not windows.contains(np.asarray([1.0, 2.0])).any()
