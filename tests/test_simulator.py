"""Corridor microsimulator: invariants, queues, signals, EV control."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.signal.light import TrafficLight
from repro.sim.simulator import CorridorSimulator
from repro.sim.vehicle_agent import VehicleAgent


def make_road(red=20.0, green=20.0, length=1500.0, stop_sign=None):
    signals = [
        SignalSite(
            position_m=800.0,
            light=TrafficLight(red_s=red, green_s=green),
            turn_ratio=0.8,
        )
    ]
    return RoadSegment(
        name="sim road",
        length_m=length,
        zones=[SpeedLimitZone(0.0, length, v_max_ms=15.0, v_min_ms=8.0)],
        stop_signs=[StopSign(stop_sign)] if stop_sign else [],
        signals=signals,
    )


def run_sim(road, arrivals, duration, **kwargs):
    sim = CorridorSimulator(road, arrivals_s=arrivals, seed=1, **kwargs)
    return sim.run(duration)


class TestInvariants:
    def test_no_overlaps_under_heavy_traffic(self):
        road = make_road()
        arrivals = np.arange(0.0, 120.0, 3.0)  # 1200 veh/h
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=2)
        for _ in range(600):
            sim.step()
            vehicles = sim._vehicles
            for leader, follower in zip(vehicles, vehicles[1:]):
                assert follower.position_m <= leader.rear_m + 1e-6

    def test_order_preserved(self):
        road = make_road()
        arrivals = np.arange(0.0, 60.0, 5.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=3)
        orders = []
        for _ in range(300):
            sim.step()
            orders.append([v.vehicle_id for v in sim._vehicles])
        # A vehicle never passes another: the relative order of any two
        # ids present in consecutive snapshots is unchanged.
        for before, after in zip(orders, orders[1:]):
            common = [vid for vid in before if vid in after]
            filtered = [vid for vid in after if vid in common]
            assert filtered == common

    def test_no_red_running(self):
        road = make_road()
        arrivals = np.arange(0.0, 300.0, 7.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=4)
        result = sim.run(400.0)
        light = road.signals[0].light
        for event in result.events:
            if event.kind == "cross_signal":
                # Crossing during red only allowed for dilemma-zone commits,
                # which happen within ~2 s of the phase flip.
                if light.is_red(event.time_s):
                    assert light.time_in_cycle(event.time_s) - light.red_s % light.cycle_s < 2.5

    def test_conservation_of_vehicles(self):
        road = make_road()
        arrivals = np.arange(0.0, 100.0, 10.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=5)
        result = sim.run(600.0)
        on_road = len(sim._vehicles)
        assert result.vehicles_entered == result.vehicles_exited + on_road
        assert result.vehicles_entered == len(arrivals)


class TestQueues:
    def test_queue_builds_during_red(self):
        road = make_road(red=40.0, green=20.0)
        arrivals = np.arange(0.0, 600.0, 8.0)
        result = run_sim(road, arrivals, 600.0)
        times, counts = result.queue_counts[800.0]
        assert counts.max() >= 2

    def test_queue_clears_during_green(self):
        road = make_road(red=20.0, green=40.0)
        arrivals = np.arange(0.0, 600.0, 15.0)
        result = run_sim(road, arrivals, 600.0)
        times, counts = result.queue_counts[800.0]
        light = road.signals[0].light
        # Late in each green the queue should be empty.
        late_green = [
            c
            for t, c in zip(times, counts)
            if light.is_green(t) and light.time_in_cycle(t) > light.red_s + 25.0
        ]
        assert np.mean(late_green) < 0.2

    def test_no_arrivals_no_queue(self):
        road = make_road()
        result = run_sim(road, [], 120.0)
        _, counts = result.queue_counts[800.0]
        assert counts.max() == 0

    def test_turn_ratio_removes_vehicles(self):
        road = make_road()
        arrivals = np.arange(0.0, 300.0, 5.0)
        result = run_sim(road, arrivals, 500.0)
        turned = sum(1 for e in result.events if e.kind == "turn_off")
        crossed = sum(1 for e in result.events if e.kind == "cross_signal")
        assert crossed > 10
        assert 0 < turned < crossed
        assert turned / crossed == pytest.approx(0.2, abs=0.15)


class TestStopSign:
    def test_every_vehicle_serves_the_sign(self):
        road = make_road(stop_sign=400.0)
        arrivals = np.arange(0.0, 100.0, 20.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=6)
        result = sim.run(400.0)
        served = {e.vehicle_id for e in result.events if e.kind == "serve_stop_sign"}
        passed = {
            e.vehicle_id
            for e in result.events
            if e.kind in ("cross_signal", "exit") and e.position_m > 400.0
        }
        assert passed and passed <= served


class TestEvControl:
    def test_ev_follows_command_on_open_road(self):
        road = make_road()
        sim = CorridorSimulator(road, arrivals_s=[], seed=7)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 10.0)
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        trace = result.ev_trace
        cruise = trace.speeds_ms[(trace.positions_m > 200) & (trace.positions_m < 700)]
        assert np.allclose(cruise, 10.0, atol=0.5)

    def test_ev_stops_at_red(self):
        road = make_road(red=1000.0, green=5.0)  # effectively always red
        sim = CorridorSimulator(road, arrivals_s=[], seed=8)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 12.0)
        result = sim.run(200.0)
        trace = result.ev_trace
        assert trace.positions_m[-1] < 800.0
        assert trace.speeds_ms[-1] == pytest.approx(0.0, abs=0.1)

    def test_ev_blocked_by_slow_leader(self):
        road = make_road(red=1.0, green=1000.0)
        sim = CorridorSimulator(
            road, arrivals_s=[0.0], seed=9, desired_speed_mean_frac=0.4,
            desired_speed_std_frac=0.0,
        )
        sim.schedule_ev(depart_s=5.0, target_speed_at=lambda s: 15.0)
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        trace = result.ev_trace
        mid = trace.speeds_ms[(trace.positions_m > 400) & (trace.positions_m < 1200)]
        assert np.mean(mid) < 10.0  # held below its command by the leader

    def test_past_departure_rejected(self):
        road = make_road()
        sim = CorridorSimulator(road, arrivals_s=[], seed=10)
        sim.run(10.0)
        with pytest.raises(ConfigurationError):
            sim.schedule_ev(depart_s=5.0, target_speed_at=lambda s: 10.0)

    def test_run_until_ev_done_requires_ev(self):
        road = make_road()
        sim = CorridorSimulator(road, arrivals_s=[], seed=11)
        with pytest.raises(ConfigurationError):
            sim.run_until_ev_done()

    def test_ev_stop_positions_recorded(self):
        road = make_road(stop_sign=400.0, red=1.0, green=1000.0)
        sim = CorridorSimulator(road, arrivals_s=[], seed=12)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 12.0)
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        assert result.ev_stops == 1
        assert result.ev_stop_positions[0] == pytest.approx(400.0, abs=5.0)
        assert result.ev_signal_stops(road) == 0


class TestValidation:
    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            CorridorSimulator(make_road(), arrivals_s=[], dt_s=0.0)

    def test_negative_stop_wait_rejected(self):
        with pytest.raises(ConfigurationError):
            CorridorSimulator(make_road(), arrivals_s=[], stop_sign_wait_s=-1.0)
