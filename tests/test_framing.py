"""Length-prefixed framing: typed truncation/oversize errors, offsets."""

import struct

import pytest

from repro.cloud.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    FrameAssembler,
    encode_frame,
    split_frames,
)
from repro.errors import ConfigurationError, WireProtocolError


def _frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


class TestEncode:
    def test_roundtrip(self):
        frame = encode_frame(b"hello")
        assert frame == _frame(b"hello")
        assert split_frames(frame) == [b"hello"]

    def test_empty_payload_refused(self):
        with pytest.raises(WireProtocolError):
            encode_frame(b"")

    def test_over_cap_refused_with_sizes(self):
        with pytest.raises(WireProtocolError) as excinfo:
            encode_frame(b"x" * 11, max_frame_bytes=10)
        assert excinfo.value.expected_bytes == 10
        assert excinfo.value.got_bytes == 11

    def test_bytearray_accepted(self):
        assert encode_frame(bytearray(b"ab")) == _frame(b"ab")


class TestAssembler:
    def test_single_byte_drip(self):
        assembler = FrameAssembler()
        frame = encode_frame(b"payload")
        collected = []
        for i in range(len(frame)):
            collected += assembler.feed(frame[i : i + 1])
        assert collected == [b"payload"]
        assert assembler.pending_bytes == 0
        assembler.finish()  # clean end-of-stream

    def test_multiple_frames_in_one_chunk(self):
        data = encode_frame(b"a") + encode_frame(b"bb") + encode_frame(b"ccc")
        assert split_frames(data) == [b"a", b"bb", b"ccc"]

    def test_frame_split_across_chunks(self):
        data = encode_frame(b"aaaa") + encode_frame(b"bbbb")
        assembler = FrameAssembler()
        first = assembler.feed(data[:6])
        second = assembler.feed(data[6:])
        assert first == [] and second == [b"aaaa", b"bbbb"]

    def test_zero_length_frame_is_typed_with_offset(self):
        assembler = FrameAssembler(what="test stream")
        good = encode_frame(b"ok")
        assembler.feed(good)
        with pytest.raises(WireProtocolError) as excinfo:
            assembler.feed(struct.pack(">I", 0))
        err = excinfo.value
        assert err.offset == len(good)  # absolute stream offset
        assert "test stream" in str(err)

    def test_oversized_declaration_rejected_from_header_alone(self):
        # A hostile 4 GiB length prefix must be refused before any
        # payload arrives (no allocation of the declared size).
        assembler = FrameAssembler(max_frame_bytes=1024)
        with pytest.raises(WireProtocolError) as excinfo:
            assembler.feed(struct.pack(">I", 0xFFFFFFFF))
        err = excinfo.value
        assert err.offset == 0
        assert err.expected_bytes == 1024
        assert err.got_bytes == 0xFFFFFFFF

    def test_truncated_mid_header(self):
        assembler = FrameAssembler()
        assembler.feed(b"\x00\x00")
        with pytest.raises(WireProtocolError) as excinfo:
            assembler.finish()
        err = excinfo.value
        assert err.offset == 0
        assert err.expected_bytes == HEADER_BYTES
        assert err.got_bytes == 2

    def test_truncated_mid_body_after_complete_frame(self):
        assembler = FrameAssembler()
        whole = encode_frame(b"abcdef")
        partial = encode_frame(b"0123456789")[: HEADER_BYTES + 4]
        assert assembler.feed(whole + partial) == [b"abcdef"]
        with pytest.raises(WireProtocolError) as excinfo:
            assembler.finish()
        err = excinfo.value
        assert err.offset == len(whole)
        assert err.expected_bytes == 10
        assert err.got_bytes == 4

    def test_split_frames_trailing_garbage_raises(self):
        data = encode_frame(b"fine") + b"\x00"
        with pytest.raises(WireProtocolError):
            split_frames(data)

    def test_cap_validation(self):
        with pytest.raises(ConfigurationError):
            FrameAssembler(max_frame_bytes=0)

    def test_default_cap_is_generous(self):
        payload = b"x" * (64 * 1024)
        assert split_frames(encode_frame(payload)) == [payload]
        assert DEFAULT_MAX_FRAME_BYTES >= 1 << 20
