"""Property-based tests of velocity profiles and window sets (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cost import WindowSet
from repro.core.profile import VelocityProfile
from repro.signal.queue import QueueWindow


@st.composite
def profiles(draw):
    """Random kinematically valid profiles: v=0 at ends, positive inside."""
    n = draw(st.integers(min_value=3, max_value=12))
    gaps = draw(
        st.lists(
            st.floats(min_value=20.0, max_value=200.0), min_size=n - 1, max_size=n - 1
        )
    )
    positions = np.concatenate([[0.0], np.cumsum(gaps)])
    inner = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=25.0), min_size=n - 2, max_size=n - 2
        )
    )
    speeds = np.concatenate([[0.0], inner, [0.0]])
    return VelocityProfile(positions_m=positions, speeds_ms=speeds)


class TestProfileProperties:
    @given(profile=profiles())
    @settings(max_examples=200, deadline=None)
    def test_arrival_times_strictly_increasing(self, profile):
        arrivals = profile.arrival_times_s
        assert np.all(np.diff(arrivals) > 0)

    @given(profile=profiles(), frac=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=200, deadline=None)
    def test_interpolated_arrival_between_grid_points(self, profile, frac):
        pos = profile.positions_m[0] + frac * profile.total_distance_m
        t = profile.arrival_time_at(float(pos))
        assert profile.arrival_times_s[0] <= t <= profile.arrival_times_s[-1] + 1e-9

    @given(profile=profiles())
    @settings(max_examples=100, deadline=None)
    def test_time_trace_consistency(self, profile):
        """ds = v dt within tolerance on the sampled rendering.

        Within a constant-acceleration segment the relation is exact;
        samples straddling a knot (acceleration change) deviate by up to
        the speed jump across the step, hence the loose per-step bound and
        the tight cumulative one.
        """
        trace = profile.to_time_trace(dt_s=0.5)
        ds = np.diff(trace.positions_m)
        dt = np.diff(trace.times_s)
        v_mid = 0.5 * (trace.speeds_ms[:-1] + trace.speeds_ms[1:])
        np.testing.assert_allclose(ds, v_mid * dt, atol=4.0)
        assert trace.distance_m == pytest.approx(profile.total_distance_m, abs=1.0)

    @given(profile=profiles())
    @settings(max_examples=100, deadline=None)
    def test_trace_duration_matches_profile(self, profile):
        trace = profile.to_time_trace(dt_s=0.25)
        assert trace.duration_s == pytest.approx(profile.total_time_s, rel=0.02, abs=0.5)

    @given(profile=profiles())
    @settings(max_examples=100, deadline=None)
    def test_speed_at_grid_points_exact(self, profile):
        for pos, speed in zip(profile.positions_m, profile.speeds_ms):
            assert profile.speed_at(float(pos)) == pytest.approx(speed, abs=1e-6)


@st.composite
def window_lists(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    result = []
    for _ in range(n):
        start = draw(st.floats(min_value=0.0, max_value=500.0))
        length = draw(st.floats(min_value=0.5, max_value=60.0))
        result.append(QueueWindow(start, start + length))
    return result


class TestWindowSetProperties:
    @given(windows=window_lists(), t=st.floats(min_value=-50.0, max_value=600.0))
    @settings(max_examples=300, deadline=None)
    def test_contains_matches_naive_check(self, windows, t):
        ws = WindowSet(windows)
        naive = any(w.start_s <= t < w.end_s for w in windows)
        assert bool(ws.contains(np.asarray([t]))[0]) == naive

    @given(windows=window_lists())
    @settings(max_examples=200, deadline=None)
    def test_merged_windows_disjoint_and_sorted(self, windows):
        merged = WindowSet(windows).as_queue_windows()
        for a, b in zip(merged, merged[1:]):
            assert a.end_s < b.start_s

    @given(windows=window_lists(), margin=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=200, deadline=None)
    def test_shrunk_is_subset(self, windows, margin):
        ws = WindowSet(windows)
        shrunk = ws.shrunk(margin)
        probe = np.linspace(-10.0, 600.0, 400)
        inside_shrunk = shrunk.contains(probe)
        inside_full = ws.contains(probe)
        assert not np.any(inside_shrunk & ~inside_full)
