"""Time-varying arrival rates through the whole planning stack.

An incident (or rush-hour onset) changes V_in mid-horizon; the QL model
samples callable rates per cycle and the planner's windows must follow.
"""

import numpy as np
import pytest

from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.signal.light import TrafficLight
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel
from repro.traffic.arrival import hourly_rate_function
from repro.traffic.volume import VolumeGenerator, VolumeSeries
from repro.units import vehicles_per_hour_to_per_second

LOW = vehicles_per_hour_to_per_second(100.0)
HIGH = vehicles_per_hour_to_per_second(700.0)


def step_rate(t_abs: float) -> float:
    """Quiet until t=120 s, then a demand surge."""
    return LOW if t_abs < 120.0 else HIGH


@pytest.fixture(scope="module")
def queue_model():
    light = TrafficLight(red_s=30.0, green_s=30.0)
    vm = VehicleMovementModel(light=light, v_min_ms=11.11)
    return QueueLengthModel(vm)


class TestTimeVaryingWindows:
    def test_windows_shift_after_surge(self, queue_model):
        windows = queue_model.empty_windows(0.0, 240.0, step_rate)
        starts_in_cycle = [(w.start_s % 60.0) for w in windows]
        # Pre-surge cycles clear earlier in the cycle than post-surge ones.
        assert starts_in_cycle[0] < starts_in_cycle[-1]

    def test_simulate_tracks_rate_change(self, queue_model):
        trace = queue_model.simulate(240.0, step_rate, dt_s=0.1)
        early_peak = trace.vehicles[(trace.times > 25.0) & (trace.times < 31.0)].max()
        late_peak = trace.vehicles[(trace.times > 205.0) & (trace.times < 211.0)].max()
        assert late_peak > early_peak

    def test_planner_accepts_callable_and_hits_windows(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=step_rate, config=coarse_config
        )
        solution = planner.plan(start_time_s=0.0, max_trip_time_s=330.0)
        assert solution.all_windows_hit

    def test_hourly_rate_function_drives_planner(self, us25, coarse_config):
        series = VolumeGenerator(seed=7).generate(n_days=1)
        rate = hourly_rate_function(series)
        planner = QueueAwareDpPlanner(us25, arrival_rates=rate, config=coarse_config)
        solution = planner.plan(start_time_s=7 * 3600.0, max_trip_time_s=330.0)
        assert solution.all_windows_hit

    def test_surge_makes_later_departures_costlier_or_equal(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=step_rate, config=coarse_config
        )
        quiet = planner.plan(start_time_s=0.0, max_trip_time_s=280.0)
        surged = planner.plan(start_time_s=130.0, max_trip_time_s=280.0)
        # Both feasible; the surged departure faces narrower windows.
        assert quiet.all_windows_hit and surged.all_windows_hit
