"""Property-based tests of GLOSA leg kinematics (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.glosa import _leg_kinematics

speeds = st.floats(min_value=0.0, max_value=25.0)
cruises = st.floats(min_value=1.0, max_value=25.0)
lengths = st.floats(min_value=50.0, max_value=2000.0)
accels = st.floats(min_value=0.5, max_value=2.5)


class TestLegKinematicsProperties:
    @given(v0=speeds, v1=speeds, v_c=cruises, length=lengths, a=accels)
    @settings(max_examples=300, deadline=None)
    def test_time_positive_and_finite(self, v0, v1, v_c, length, a):
        assume(v1 <= v_c + 1e-9)
        t, d_up, d_down, peak = _leg_kinematics(v0, v1, v_c, length, a, a)
        assert np.isfinite(t)
        assert t > 0.0

    @given(v0=speeds, v1=speeds, v_c=cruises, length=lengths, a=accels)
    @settings(max_examples=300, deadline=None)
    def test_ramps_fit_inside_leg(self, v0, v1, v_c, length, a):
        assume(v1 <= v_c + 1e-9)
        _, d_up, d_down, peak = _leg_kinematics(v0, v1, v_c, length, a, a)
        assert d_up >= 0.0 and d_down >= 0.0
        assert d_up + d_down <= length + 1e-6

    @given(v0=speeds, v1=speeds, v_c=cruises, length=lengths, a=accels)
    @settings(max_examples=300, deadline=None)
    def test_peak_bounded_by_cruise(self, v0, v1, v_c, length, a):
        assume(v1 <= v_c + 1e-9)
        assume(v0 <= v_c + 1e-9)  # no entry slowdown in this property
        _, _, _, peak = _leg_kinematics(v0, v1, v_c, length, a, a)
        assert peak <= v_c + 1e-9

    @given(v0=speeds, length=lengths, a=accels)
    @settings(max_examples=200, deadline=None)
    def test_time_lower_bounded_by_top_speed_run(self, v0, length, a):
        """No leg can be faster than teleporting at its peak speed."""
        v_c = 20.0
        t, _, _, peak = _leg_kinematics(v0, v_c, v_c, length, a, a)
        assert t >= length / max(peak, v0) - 1e-6

    @given(v0=speeds, v1=speeds, length=lengths, a=accels)
    @settings(max_examples=200, deadline=None)
    def test_time_monotone_nonincreasing_in_cruise(self, v0, v1, length, a):
        assume(v1 <= 8.0)
        t_slow = _leg_kinematics(v0, v1, 8.0, length, a, a)[0]
        t_fast = _leg_kinematics(v0, v1, 16.0, length, a, a)[0]
        assert t_fast <= t_slow + 1e-6
