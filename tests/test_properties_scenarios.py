"""Property-based tests of the scenario-aware corridor digest (hypothesis).

The digest is the cache key for every expensive corridor build, so its
contract is sharp in both directions: *any* vehicle or environment
parameter change must change it (no cross-scenario contamination), and
equal inputs must always hash equal (warm reuse within a scenario).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine.artifacts import corridor_digest
from repro.route.us25 import us25_greenville_segment
from repro.vehicle.environment import EnvironmentConditions
from repro.vehicle.params import VehicleParams

ROAD = us25_greenville_segment()


def _digest(vehicle=None, environment=None) -> str:
    return corridor_digest(
        ROAD,
        vehicle if vehicle is not None else VehicleParams(),
        environment=environment,
        v_step_ms=1.0,
        s_step_m=50.0,
    )


NOMINAL_DIGEST = _digest()

temps = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)
winds = st.floats(min_value=-40.0, max_value=40.0, allow_nan=False)
payloads = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)
grades = st.floats(min_value=-0.2, max_value=0.2, allow_nan=False)

environments = st.builds(
    EnvironmentConditions,
    ambient_temp_c=temps,
    headwind_ms=winds,
    payload_kg=payloads,
    grade_offset_rad=grades,
)

#: Perturbable numeric vehicle fields and a strictly-positive range each.
_VEHICLE_FIELDS = {
    "mass_kg": (500.0, 4000.0),
    "frontal_area_m2": (1.0, 6.0),
    "drag_coefficient": (0.1, 0.6),
    "rolling_resistance": (0.005, 0.05),
    "battery_efficiency": (0.5, 1.0),
    "powertrain_efficiency": (0.5, 1.0),
    "regen_efficiency": (0.0, 1.0),
    "aux_power_w": (0.0, 3000.0),
}


@st.composite
def vehicle_perturbations(draw):
    """One numeric field plus a value drawn from its physical range."""
    name = draw(st.sampled_from(sorted(_VEHICLE_FIELDS)))
    low, high = _VEHICLE_FIELDS[name]
    value = draw(st.floats(min_value=low, max_value=high, allow_nan=False))
    return name, value


class TestEnvironmentDigest:
    @given(env=environments)
    @settings(max_examples=100, deadline=None)
    def test_any_non_nominal_environment_changes_the_digest(self, env):
        digest = _digest(environment=env)
        if env.is_nominal:
            assert digest == NOMINAL_DIGEST
        else:
            assert digest != NOMINAL_DIGEST

    @given(env=environments)
    @settings(max_examples=100, deadline=None)
    def test_equal_environments_hash_equal(self, env):
        clone = EnvironmentConditions(
            ambient_temp_c=env.ambient_temp_c,
            headwind_ms=env.headwind_ms,
            payload_kg=env.payload_kg,
            grade_offset_rad=env.grade_offset_rad,
        )
        assert _digest(environment=env) == _digest(environment=clone)

    @given(a=environments, b=environments)
    @settings(max_examples=100, deadline=None)
    def test_digests_collide_only_for_equal_environments(self, a, b):
        if a == b:
            assert _digest(environment=a) == _digest(environment=b)
        else:
            assert _digest(environment=a) != _digest(environment=b)


class TestVehicleDigest:
    @given(perturbation=vehicle_perturbations())
    @settings(max_examples=100, deadline=None)
    def test_any_vehicle_parameter_change_changes_the_digest(self, perturbation):
        name, value = perturbation
        default = VehicleParams()
        if getattr(default, name) == value:
            return  # drew the default itself: not a perturbation
        perturbed = dataclasses.replace(default, **{name: value})
        assert _digest(vehicle=perturbed) != NOMINAL_DIGEST

    @given(perturbation=vehicle_perturbations())
    @settings(max_examples=50, deadline=None)
    def test_equal_vehicles_hash_equal(self, perturbation):
        name, value = perturbation
        a = dataclasses.replace(VehicleParams(), **{name: value})
        b = dataclasses.replace(VehicleParams(), **{name: value})
        assert _digest(vehicle=a) == _digest(vehicle=b)
