"""Road JSON serialization and real-world plausibility anchors."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.route.io import load_road_json, road_from_dict, road_to_dict, save_road_json
from repro.route.us25 import us25_greenville_segment
from repro.route.arterial import urban_arterial
from repro.units import kmh_to_ms
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams


class TestRoadIo:
    @pytest.mark.parametrize("factory", [us25_greenville_segment, urban_arterial])
    def test_roundtrip_preserves_everything(self, tmp_path, factory):
        road = factory()
        path = tmp_path / "road.json"
        save_road_json(road, path)
        loaded = load_road_json(path)
        assert loaded.name == road.name
        assert loaded.length_m == road.length_m
        assert len(loaded.zones) == len(road.zones)
        assert loaded.signal_positions() == road.signal_positions()
        assert [s.position_m for s in loaded.stop_signs] == [
            s.position_m for s in road.stop_signs
        ]
        for a, b in zip(loaded.signals, road.signals):
            assert a.light.red_s == b.light.red_s
            assert a.light.offset_s == b.light.offset_s
            assert a.turn_ratio == b.turn_ratio

    def test_grade_roundtrips(self, tmp_path):
        from repro.route.road import GradeProfile

        road = us25_greenville_segment(
            grade=GradeProfile([0.0, 2100.0, 4200.0], [0.0, 0.02, -0.01])
        )
        path = tmp_path / "graded.json"
        save_road_json(road, path)
        loaded = load_road_json(path)
        for s in (0.0, 1000.0, 3000.0, 4200.0):
            assert loaded.grade_at(s) == pytest.approx(road.grade_at(s))

    def test_unknown_version_rejected(self):
        data = road_to_dict(us25_greenville_segment())
        data["format_version"] = 99
        with pytest.raises(ConfigurationError):
            road_from_dict(data)

    def test_missing_field_rejected(self):
        data = road_to_dict(us25_greenville_segment())
        del data["zones"]
        with pytest.raises(ConfigurationError):
            road_from_dict(data)

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "r.json"
        save_road_json(us25_greenville_segment(), path)
        parsed = json.loads(path.read_text())
        assert parsed["name"].startswith("US-25")

    def test_loaded_road_is_plannable(self, tmp_path, coarse_config):
        from repro.core.planner import UnconstrainedDpPlanner

        path = tmp_path / "r.json"
        save_road_json(us25_greenville_segment(), path)
        road = load_road_json(path)
        planner = UnconstrainedDpPlanner(road, config=coarse_config)
        assert planner.plan(0.0, max_trip_time_s=330.0).profile.total_distance_m > 4000


class TestRealWorldPlausibility:
    """Anchor the energy model against published EV consumption figures."""

    def test_highway_consumption_in_ev_band(self):
        """Steady 100 km/h consumption: real compact EVs report 130-200 Wh/km."""
        model = LongitudinalModel()
        v = kmh_to_ms(100.0)
        power_w = model.electrical_power(v, 0.0)
        wh_per_km = power_w / v / 3.6
        assert 100.0 <= wh_per_km <= 220.0

    def test_city_consumption_in_ev_band(self):
        """Steady 50 km/h: roughly 70-130 Wh/km before auxiliaries."""
        model = LongitudinalModel()
        v = kmh_to_ms(50.0)
        wh_per_km = model.electrical_power(v, 0.0) / v / 3.6
        assert 50.0 <= wh_per_km <= 140.0

    def test_pack_range_plausible(self):
        """399 V x 46.2 Ah is ~18.4 kWh: range at 100 km/h should be ~100-150 km."""
        model = LongitudinalModel()
        v = kmh_to_ms(100.0)
        wh_per_km = model.electrical_power(v, 0.0) / v / 3.6
        pack_wh = 399.0 * 46.2
        range_km = pack_wh / wh_per_km
        assert 80.0 <= range_km <= 200.0

    def test_aux_load_cuts_range(self):
        """A 2 kW winter HVAC load visibly raises city consumption."""
        base = LongitudinalModel(VehicleParams())
        winter = LongitudinalModel(VehicleParams(aux_power_w=2000.0))
        v = kmh_to_ms(50.0)
        base_wh = base.electrical_power(v, 0.0) / v / 3.6
        winter_wh = winter.electrical_power(v, 0.0) / v / 3.6
        assert winter_wh == pytest.approx(base_wh + 2000.0 / v / 3.6)
        assert winter_wh > base_wh * 1.3

    def test_aux_load_applies_during_regen(self):
        model = LongitudinalModel(VehicleParams(aux_power_w=1000.0))
        base = LongitudinalModel(VehicleParams())
        assert model.electrical_power(15.0, -1.5) == pytest.approx(
            base.electrical_power(15.0, -1.5) + 1000.0
        )

    def test_negative_aux_rejected(self):
        with pytest.raises(ConfigurationError):
            VehicleParams(aux_power_w=-1.0)


class TestRoadLoaderContract:
    """Loader failures surface as typed, located InputValidationError."""

    def test_missing_file_is_typed(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.route.io import load_road_json

        with pytest.raises(InputValidationError) as err:
            load_road_json(tmp_path / "absent.json")
        assert err.value.source is not None and "absent.json" in err.value.source

    def test_broken_json_is_typed(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.route.io import load_road_json

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(InputValidationError) as err:
            load_road_json(path)
        assert "JSON" in str(err.value)

    def test_contract_violation_names_the_field(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.route.io import load_road_json, save_road_json

        path = tmp_path / "bad.json"
        save_road_json(us25_greenville_segment(), path)
        data = json.loads(path.read_text())
        data["length_m"] = float("nan")
        path.write_text(json.dumps(data))
        with pytest.raises(InputValidationError) as err:
            load_road_json(path)
        assert err.value.field == "length_m"
        assert isinstance(err.value, ConfigurationError)

    def test_repair_mode_salvages_and_reports(self, tmp_path):
        from repro.route.io import load_road_json_repaired, save_road_json

        road = us25_greenville_segment()
        path = tmp_path / "salvage.json"
        save_road_json(road, path)
        data = json.loads(path.read_text())
        data["stop_signs"] = list(data["stop_signs"]) + [road.length_m + 500.0]
        path.write_text(json.dumps(data))
        loaded, report = load_road_json_repaired(path)
        assert len(loaded.stop_signs) == len(road.stop_signs)
        assert report and "stop" in report.summary()
