"""Degradation ladder: tier fallback, closed-loop chaos, determinism."""

import numpy as np
import pytest

from repro import obs
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.core.planner import BaselineDpPlanner, QueueAwareDpPlanner
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
    SimulationTimeoutError,
)
from repro.resilience.client import ResilientPlanClient
from repro.resilience.faults import CloudFaultModel
from repro.core.horizon import RecedingHorizonPlanner
from repro.resilience.ladder import (
    TIER_BASELINE_DP,
    TIER_GLOSA,
    TIER_QUEUE_DP,
    TIER_QUEUE_DP_MPC,
    TIER_SPEED_LIMIT,
    TIERS,
    DegradationLadder,
    speed_limit_command,
    speed_limit_trip_time_s,
)
from repro.sim.closed_loop import ClosedLoopDriver, ClosedLoopResult
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


class UnreachableClient:
    """Every request dies on the wire."""

    def __init__(self):
        self.requests = []

    def request(self, req, now_s=None):
        self.requests.append(req)
        raise CloudUnavailableError(
            "injected", vehicle_id=req.vehicle_id, attempts=1, reason="drop"
        )


class InfeasibleClient:
    """The cloud is reachable but finds every objective infeasible."""

    def __init__(self):
        self.requests = []

    def request(self, req, now_s=None):
        self.requests.append(req)
        raise PlanningFailedError(
            "infeasible", vehicle_id=req.vehicle_id, depart_s=req.depart_s
        )


class BudgetBoundClient:
    """Energy objective infeasible; the min-time fallback succeeds."""

    def __init__(self, response):
        self.response = response
        self.requests = []

    def request(self, req, now_s=None):
        self.requests.append(req)
        if req.minimize == "energy":
            raise PlanningFailedError(
                "budget too tight", vehicle_id=req.vehicle_id, depart_s=req.depart_s
            )
        return self.response


def _raise_repro_error():
    raise ConfigurationError("injected tier failure")


class TestTierFallback:
    @pytest.fixture()
    def ladder(self, short_road, coarse_config):
        return DegradationLadder(
            UnreachableClient(), short_road, config=coarse_config
        )

    def test_validation(self, short_road):
        with pytest.raises(ConfigurationError):
            DegradationLadder(UnreachableClient(), short_road, vehicle_id="")

    def test_cloud_unavailable_falls_to_baseline(self, ladder):
        plan = ladder.plan(0.0, max_trip_time_s=200.0)
        assert plan.tier == TIER_BASELINE_DP
        assert plan.degraded
        assert plan.profile is not None
        assert plan.trip_time_s > 0
        assert callable(plan.command)
        assert ladder.tier_history == [TIER_BASELINE_DP]

    def test_baseline_failure_falls_to_glosa(self, ladder, monkeypatch):
        monkeypatch.setattr(
            ladder, "_baseline_planner", lambda: _raise_repro_error()
        )
        plan = ladder.plan(0.0, max_trip_time_s=200.0)
        assert plan.tier == TIER_GLOSA
        assert plan.profile is not None
        assert plan.trip_time_s > 0

    def test_glosa_failure_falls_to_speed_limit(self, ladder, monkeypatch, short_road):
        monkeypatch.setattr(ladder, "_baseline_planner", lambda: _raise_repro_error())
        monkeypatch.setattr(ladder, "_glosa_advisor", lambda: _raise_repro_error())
        plan = ladder.plan(0.0)
        assert plan.tier == TIER_SPEED_LIMIT
        assert plan.profile is None
        assert np.isnan(plan.energy_mah)
        assert plan.command(0.0) == short_road.v_max_at(0.0)
        assert plan.trip_time_s == pytest.approx(
            speed_limit_trip_time_s(short_road), rel=1e-9
        )

    def test_replan_degrades_on_transport_failure(self, ladder):
        plan = ladder.replan(position_m=200.0, speed_ms=10.0, time_s=30.0)
        assert plan.tier == TIER_BASELINE_DP
        assert plan.profile.positions_m[0] >= 200.0

    def test_tier_recorded_in_obs(self, short_road, coarse_config):
        registry = obs.get_registry()
        registry.enabled = True
        registry.reset()
        try:
            ladder = DegradationLadder(
                UnreachableClient(), short_road, config=coarse_config
            )
            ladder.plan(0.0, max_trip_time_s=200.0)
            assert registry.counter_value("resilience.tier.baseline_dp") == 1
            assert registry.counter_value("resilience.degraded") == 1
        finally:
            registry.enabled = False
            registry.reset()


class TestReplanFailureSemantics:
    def test_plan_degrades_on_infeasible(self, short_road, coarse_config):
        # A full-trip plan has no previous command to keep: degrade.
        ladder = DegradationLadder(
            InfeasibleClient(), short_road, config=coarse_config
        )
        plan = ladder.plan(0.0, max_trip_time_s=200.0)
        assert plan.tier == TIER_BASELINE_DP

    def test_replan_retries_min_time_then_propagates(self, short_road, coarse_config):
        client = InfeasibleClient()
        ladder = DegradationLadder(client, short_road, config=coarse_config)
        with pytest.raises(PlanningFailedError):
            ladder.replan(position_m=200.0, speed_ms=10.0, time_s=30.0)
        assert [req.minimize for req in client.requests] == ["energy", "time"]
        assert client.requests[1].max_trip_time_s is None
        assert ladder.tier_history == []

    def test_replan_recovers_through_min_time(self, short_road, coarse_config):
        solution = BaselineDpPlanner(short_road, config=coarse_config).plan(30.0)
        response = PlanResponse(
            vehicle_id="ev",
            profile=solution.profile,
            energy_mah=solution.energy_mah,
            trip_time_s=solution.trip_time_s,
            cache_hit=False,
            compute_time_s=0.0,
        )
        client = BudgetBoundClient(response)
        ladder = DegradationLadder(client, short_road, config=coarse_config)
        plan = ladder.replan(position_m=200.0, speed_ms=10.0, time_s=30.0)
        assert plan.tier == TIER_QUEUE_DP
        assert [req.minimize for req in client.requests] == ["energy", "time"]


class TestSpeedLimitTier:
    def test_command_clamps_out_of_range(self, short_road):
        command = speed_limit_command(short_road)
        assert command(-5.0) == short_road.v_max_at(0.0)
        assert command(short_road.length_m + 100.0) == short_road.v_max_at(
            short_road.length_m
        )

    def test_trip_time_shrinks_with_progress(self, us25):
        assert (
            0.0
            < speed_limit_trip_time_s(us25, us25.length_m - 100.0)
            < speed_limit_trip_time_s(us25, 2000.0)
            < speed_limit_trip_time_s(us25, 0.0)
        )


@pytest.fixture(scope="module")
def cloud_planner(us25, coarse_config):
    return QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)


def _scenario(us25, seed=13):
    return Us25Scenario(road=us25, arrival_rate_vph=300.0, warmup_s=300.0, seed=seed)


def _laddered_driver(us25, coarse_config, planner, drop_rate, fault_seed=7, seed=13):
    fault = (
        CloudFaultModel(drop_rate=drop_rate, seed=fault_seed)
        if drop_rate > 0.0
        else None
    )
    client = ResilientPlanClient(
        CloudPlannerService(planner), fault=fault, max_attempts=2
    )
    ladder = DegradationLadder(
        client, us25, arrival_rates=RATE, config=coarse_config
    )
    driver = ClosedLoopDriver(
        _scenario(us25, seed), ladder=ladder, replan_interval_s=20.0
    )
    return driver, client


class TestClosedLoopResilience:
    def test_driver_requires_exactly_one_path(self, us25, coarse_config, cloud_planner):
        client = ResilientPlanClient(CloudPlannerService(cloud_planner))
        ladder = DegradationLadder(client, us25, arrival_rates=RATE, config=coarse_config)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(_scenario(us25), cloud_planner, ladder=ladder)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(_scenario(us25))

    def test_zero_fault_run_bit_identical_to_direct(
        self, us25, coarse_config, cloud_planner
    ):
        direct = ClosedLoopDriver(
            _scenario(us25), cloud_planner, replan_interval_s=20.0
        ).run(depart_s=300.0, max_trip_time_s=320.0)
        laddered_driver, _ = _laddered_driver(
            us25, coarse_config, cloud_planner, drop_rate=0.0
        )
        laddered = laddered_driver.run(depart_s=300.0, max_trip_time_s=320.0)
        assert np.array_equal(
            direct.ev_trace.positions_m, laddered.ev_trace.positions_m
        )
        assert np.array_equal(direct.ev_trace.speeds_ms, laddered.ev_trace.speeds_ms)
        assert direct.ev_trace.energy().net_mah == laddered.ev_trace.energy().net_mah
        assert (
            direct.replans_attempted,
            direct.replans_applied,
            direct.replans_infeasible,
        ) == (
            laddered.replans_attempted,
            laddered.replans_applied,
            laddered.replans_infeasible,
        )
        assert laddered.initial_tier == TIER_QUEUE_DP
        assert set(laddered.tier_counts) <= {TIER_QUEUE_DP}
        assert laddered.degraded_replans == 0

    @pytest.mark.parametrize("seed", [13, 21])
    def test_half_loss_still_completes(self, us25, coarse_config, cloud_planner, seed):
        driver, client = _laddered_driver(
            us25, coarse_config, cloud_planner, drop_rate=0.5, seed=seed
        )
        outcome = driver.run(depart_s=300.0, max_trip_time_s=320.0)
        assert outcome.ev_trace is not None
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0
        assert (
            outcome.replans_applied + outcome.replans_infeasible
            == outcome.replans_attempted
        )
        assert sum(outcome.tier_counts.values()) == outcome.replans_applied
        assert set(outcome.tier_counts) <= set(TIERS)
        assert client.stats.drops > 0

    def test_same_fault_seed_reproduces_counters(
        self, us25, coarse_config, cloud_planner
    ):
        def run_once():
            driver, client = _laddered_driver(
                us25, coarse_config, cloud_planner, drop_rate=0.5
            )
            outcome = driver.run(depart_s=300.0, max_trip_time_s=320.0)
            return outcome, client.stats

        first, stats_a = run_once()
        second, stats_b = run_once()
        assert first.replan_tiers == second.replan_tiers
        assert first.tier_counts == second.tier_counts
        assert (
            first.replans_attempted,
            first.replans_applied,
            first.replans_infeasible,
            first.replans_failed,
        ) == (
            second.replans_attempted,
            second.replans_applied,
            second.replans_infeasible,
            second.replans_failed,
        )
        assert first.ev_trace.energy().net_mah == second.ev_trace.energy().net_mah
        assert (stats_a.attempts, stats_a.drops, stats_a.retries) == (
            stats_b.attempts,
            stats_b.drops,
            stats_b.retries,
        )

    def test_horizon_exhaustion_raises_timeout(self, us25, cloud_planner):
        scenario = Us25Scenario(road=us25, arrival_rate_vph=300.0, warmup_s=0.0, seed=13)
        driver = ClosedLoopDriver(scenario, cloud_planner, replan_interval_s=20.0)
        with pytest.raises(SimulationTimeoutError) as excinfo:
            driver.run(depart_s=0.0, max_trip_time_s=320.0, horizon_s=60.0)
        assert excinfo.value.horizon_s == 60.0

    def test_direct_service_failure_keeps_driving(self, us25, cloud_planner):
        class FlakyPlanner:
            def __init__(self, inner):
                self.inner = inner

            def plan(self, *args, **kwargs):
                return self.inner.plan(*args, **kwargs)

            def replan(self, *args, **kwargs):
                raise PlanningFailedError("backend down", vehicle_id="ev")

        driver = ClosedLoopDriver(
            _scenario(us25), FlakyPlanner(cloud_planner), replan_interval_s=20.0
        )
        outcome = driver.run(depart_s=300.0, max_trip_time_s=320.0)
        assert outcome.ev_trace is not None
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0
        assert outcome.replans_failed == outcome.replans_attempted > 0
        assert outcome.replans_applied == 0
        assert (
            outcome.replans_applied
            + outcome.replans_infeasible
            + outcome.replans_failed
            == outcome.replans_attempted
        )


class FailingMpc:
    """Every receding-horizon cycle fails typed."""

    def __init__(self):
        self.calls = 0

    def plan(self, *args, **kwargs):
        self.calls += 1
        raise PlanningFailedError("dead windows", vehicle_id="ev", depart_s=0.0)

    def replan(self, *args, **kwargs):
        self.calls += 1
        raise PlanningFailedError("dead windows", vehicle_id="ev", depart_s=0.0)


class TestMpcTier:
    def test_tier_sits_between_queue_dp_and_baseline(self):
        assert (
            TIERS.index(TIER_QUEUE_DP)
            < TIERS.index(TIER_QUEUE_DP_MPC)
            < TIERS.index(TIER_BASELINE_DP)
        )

    def test_unreachable_cloud_serves_mpc_not_degraded(
        self, us25, coarse_config, cloud_planner
    ):
        ladder = DegradationLadder(
            UnreachableClient(),
            us25,
            arrival_rates=RATE,
            config=coarse_config,
            mpc=RecedingHorizonPlanner(cloud_planner),
        )
        plan = ladder.plan(0.0, max_trip_time_s=320.0)
        assert plan.tier == TIER_QUEUE_DP_MPC
        assert not plan.degraded
        assert plan.profile is not None
        replan = ladder.replan(position_m=1000.0, speed_ms=8.0, time_s=100.0)
        assert replan.tier == TIER_QUEUE_DP_MPC
        assert replan.profile.positions_m[0] >= 1000.0

    def test_mpc_failure_falls_to_baseline(self, us25, coarse_config):
        mpc = FailingMpc()
        ladder = DegradationLadder(
            UnreachableClient(),
            us25,
            arrival_rates=RATE,
            config=coarse_config,
            mpc=mpc,
        )
        plan = ladder.plan(0.0, max_trip_time_s=320.0)
        assert mpc.calls == 1
        assert plan.tier == TIER_BASELINE_DP
        assert plan.degraded

    def test_zero_fault_drive_bit_identical_with_mpc_attached(
        self, us25, coarse_config, cloud_planner
    ):
        # With a healthy cloud the MPC tier is never consulted, so
        # attaching it must not perturb a single float of the drive.
        def run_once(mpc):
            client = ResilientPlanClient(CloudPlannerService(cloud_planner))
            ladder = DegradationLadder(
                client, us25, arrival_rates=RATE, config=coarse_config, mpc=mpc
            )
            driver = ClosedLoopDriver(
                _scenario(us25), ladder=ladder, replan_interval_s=20.0
            )
            return driver.run(depart_s=300.0, max_trip_time_s=320.0)

        without = run_once(mpc=None)
        with_mpc = run_once(mpc=RecedingHorizonPlanner(cloud_planner))
        assert np.array_equal(
            without.ev_trace.positions_m, with_mpc.ev_trace.positions_m
        )
        assert np.array_equal(without.ev_trace.speeds_ms, with_mpc.ev_trace.speeds_ms)
        assert (
            without.ev_trace.energy().net_mah == with_mpc.ev_trace.energy().net_mah
        )
        assert without.replan_tiers == with_mpc.replan_tiers
        assert set(with_mpc.tier_counts) <= {TIER_QUEUE_DP}

    def test_unreachable_cloud_drive_served_by_mpc(
        self, us25, coarse_config, cloud_planner
    ):
        ladder = DegradationLadder(
            UnreachableClient(),
            us25,
            arrival_rates=RATE,
            config=coarse_config,
            mpc=RecedingHorizonPlanner(cloud_planner),
        )
        driver = ClosedLoopDriver(
            _scenario(us25), ladder=ladder, replan_interval_s=20.0
        )
        outcome = driver.run(depart_s=300.0, max_trip_time_s=320.0)
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0
        assert outcome.initial_tier == TIER_QUEUE_DP_MPC
        assert set(outcome.tier_counts) <= {TIER_QUEUE_DP_MPC}
        # MPC replans are primary-tier service, not degradation.
        assert outcome.degraded_replans == 0

    def test_result_accounting_excludes_mpc_from_degraded(self):
        result = ClosedLoopResult(
            sim=None,
            replans_attempted=6,
            replans_applied=6,
            replans_infeasible=0,
            tier_counts={
                TIER_QUEUE_DP: 2,
                TIER_QUEUE_DP_MPC: 3,
                TIER_BASELINE_DP: 1,
            },
        )
        assert result.degraded_replans == 1
