"""Receding-horizon wrapper: delegation, truncation, typed cycle failure."""

import numpy as np
import pytest

from repro.core.horizon import RecedingHorizonPlanner
from repro.core.planner import QueueAwareDpPlanner
from repro.core.uncertainty import ChanceConstrainedPlanner, ResidualModel
from repro.errors import (
    ConfigurationError,
    InfeasibleProblemError,
    PlanningFailedError,
)
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def inner(us25, coarse_config):
    return QueueAwareDpPlanner(us25, RATE, config=coarse_config)


@pytest.fixture(scope="module")
def mpc(inner):
    return RecedingHorizonPlanner(inner)


class TestValidation:
    def test_bad_lookahead(self, inner):
        with pytest.raises(ConfigurationError):
            RecedingHorizonPlanner(inner, lookahead_s=0.0)
        with pytest.raises(ConfigurationError):
            RecedingHorizonPlanner(inner, lookahead_s=-5.0)

    def test_bad_cycle(self, inner):
        with pytest.raises(ConfigurationError):
            RecedingHorizonPlanner(inner, cycle_s=0.0)


class TestDelegation:
    def test_surface_matches_inner(self, inner, mpc):
        assert mpc.road is inner.road
        assert mpc.vehicle is inner.vehicle
        assert mpc.config is inner.config
        assert mpc.store is inner.store
        assert mpc.solver is inner.solver

    def test_signal_constraints_are_never_truncated(self, inner, us25):
        # The service revalidates cached plans against the full window
        # set; even a truncating wrapper must expose every constraint.
        mpc = RecedingHorizonPlanner(inner, lookahead_s=10.0)
        assert len(mpc.signal_constraints(0.0)) == len(inner.signal_constraints(0.0))

    def test_plan_bit_identical(self, inner, mpc):
        a = inner.plan(max_trip_time_s=320.0)
        b = mpc.plan(max_trip_time_s=320.0)
        assert a.energy_j == b.energy_j
        np.testing.assert_array_equal(a.profile.speeds_ms, b.profile.speeds_ms)

    def test_min_trip_time_delegates(self, inner, mpc):
        assert mpc.min_trip_time(0.0) == inner.min_trip_time(0.0)

    def test_batch_delegates(self, inner, mpc):
        a = inner.plan_batch([(0.0, 320.0), (30.0, 320.0)])
        b = mpc.plan_batch([(0.0, 320.0), (30.0, 320.0)])
        for sa, sb in zip(a, b):
            assert sa.energy_j == sb.energy_j
        ta = inner.min_trip_time_batch([0.0, 30.0])
        tb = mpc.min_trip_time_batch([0.0, 30.0])
        assert ta == tb


class TestReplanCycle:
    def test_default_replan_bit_identical(self, inner, mpc, us25):
        state = dict(position_m=1000.0, speed_ms=8.0, time_s=100.0)
        a = inner.replan(max_trip_time_s=320.0, **state)
        b = mpc.replan(max_trip_time_s=320.0, **state)
        assert a.energy_j == b.energy_j
        assert a.trip_time_s == b.trip_time_s
        np.testing.assert_array_equal(a.profile.speeds_ms, b.profile.speeds_ms)

    def test_lookahead_drops_unreachable_constraint(self, inner, us25):
        mpc = RecedingHorizonPlanner(inner, lookahead_s=30.0)
        full = inner.signal_constraints(100.0)
        kept = mpc._truncated(full, 1000.0)
        # 30 s of flat-out driving cannot reach the far signal.
        assert len(kept) < len(full)
        assert all(
            mpc.reachable_within_lookahead(1000.0, c.position_m)
            or c.position_m <= 1000.0
            for c in kept
        )

    def test_constraints_behind_ev_are_kept(self, inner):
        mpc = RecedingHorizonPlanner(inner, lookahead_s=1.0)
        full = inner.signal_constraints(100.0)
        behind = mpc._truncated(full, inner.road.length_m)
        # Everything is behind the EV at route end; nothing is dropped
        # (the solver ignores constraints behind the start on its own).
        assert len(behind) == len(full)

    def test_no_lookahead_reaches_everything(self, mpc):
        assert mpc.reachable_within_lookahead(0.0, mpc.road.length_m)

    def test_truncated_replan_still_solves(self, inner):
        mpc = RecedingHorizonPlanner(inner, lookahead_s=30.0)
        sol = mpc.replan(position_m=1000.0, speed_ms=8.0, time_s=100.0)
        assert sol.trip_time_s > 0

    def test_infeasible_budget_recovers_min_time(self, mpc):
        # A 5 s remaining budget is impossible; the cycle retries as a
        # minimum-time solve instead of failing.
        sol = mpc.replan(
            position_m=1000.0, speed_ms=8.0, time_s=100.0, max_trip_time_s=5.0
        )
        assert sol.trip_time_s > 5.0

    def test_phase_infeasible_cycle_fails_typed_by_default(self, inner, mpc):
        # On a v_min road the EV cannot dawdle, so from this state the
        # next queue-free window at the far signal opens just past the
        # latest reachable arrival: the hard program is infeasible at
        # any budget.  The default policy fails typed so the ladder /
        # driver can keep the previous command.
        state = dict(position_m=2500.0, speed_ms=9.0, time_s=210.0)
        with pytest.raises(InfeasibleProblemError):
            inner.replan(**state)
        with pytest.raises(PlanningFailedError):
            mpc.replan(**state)

    def test_soften_infeasible_recovers_via_penalty(self, inner):
        # Opt-in for unsupervised direct serving: the same cycle falls
        # back to penalty windows and still produces a full profile.
        soft = RecedingHorizonPlanner(inner, soften_infeasible=True)
        sol = soft.replan(position_m=2500.0, speed_ms=9.0, time_s=210.0)
        assert sol.trip_time_s > 0
        assert sol.profile.positions_m[-1] == pytest.approx(inner.road.length_m)

    def test_dead_windows_raise_typed_failure(self, us25, coarse_config):
        # A chance level so extreme every shrunk window collapses:
        # min-time retry cannot help, so the cycle fails typed — even
        # with the penalty fallback enabled, since softening a collapsed
        # forecast would just degenerate to an unconstrained solve.
        residuals = ResidualModel([0.0]).with_timing_noise(4000.0)
        inner = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.99, config=coarse_config
        )
        mpc = RecedingHorizonPlanner(inner)
        with pytest.raises(PlanningFailedError) as excinfo:
            mpc.replan(position_m=1000.0, speed_ms=8.0, time_s=100.0)
        assert excinfo.value.depart_s == pytest.approx(100.0)
        soft = RecedingHorizonPlanner(inner, soften_infeasible=True)
        with pytest.raises(PlanningFailedError):
            soft.replan(position_m=1000.0, speed_ms=8.0, time_s=100.0)
