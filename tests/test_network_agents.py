"""SimNetwork lookups, vehicle agents and event records."""

import pytest

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.signal.light import TrafficLight
from repro.sim.events import SimEvent
from repro.sim.network import SimNetwork
from repro.sim.vehicle_agent import VEHICLE_LENGTH_M, VehicleAgent


@pytest.fixture
def network():
    road = RoadSegment(
        name="net road",
        length_m=2000.0,
        zones=[
            SpeedLimitZone(0.0, 1000.0, v_max_ms=15.0),
            SpeedLimitZone(1000.0, 2000.0, v_max_ms=20.0),
        ],
        stop_signs=[StopSign(300.0), StopSign(1200.0)],
        signals=[
            SignalSite(position_m=800.0, light=TrafficLight(red_s=10, green_s=10)),
            SignalSite(position_m=1600.0, light=TrafficLight(red_s=10, green_s=10)),
        ],
    )
    return SimNetwork(road)


class TestSimNetwork:
    def test_speed_limit_clamped(self, network):
        assert network.speed_limit_at(-5.0) == 15.0
        assert network.speed_limit_at(2500.0) == 20.0
        assert network.speed_limit_at(1500.0) == 20.0

    def test_next_signal_ahead(self, network):
        site = network.next_signal_ahead(0.0, set())
        assert site.position_m == 800.0
        site = network.next_signal_ahead(900.0, set())
        assert site.position_m == 1600.0

    def test_next_signal_skips_crossed(self, network):
        site = network.next_signal_ahead(0.0, {800.0})
        assert site.position_m == 1600.0
        assert network.next_signal_ahead(0.0, {800.0, 1600.0}) is None

    def test_signal_strictly_ahead(self, network):
        # Standing exactly on the stop line: it is no longer "ahead".
        site = network.next_signal_ahead(800.0, set())
        assert site.position_m == 1600.0

    def test_next_stop_sign(self, network):
        assert network.next_stop_sign_ahead(0.0, set()) == 300.0
        assert network.next_stop_sign_ahead(400.0, set()) == 1200.0
        assert network.next_stop_sign_ahead(0.0, {300.0}) == 1200.0
        assert network.next_stop_sign_ahead(1300.0, set()) is None

    def test_signal_site_lookup(self, network):
        assert network.signal_site(800.0).position_m == 800.0
        with pytest.raises(KeyError):
            network.signal_site(999.0)

    def test_length(self, network):
        assert network.length_m == 2000.0


class TestVehicleAgent:
    def test_rear_position(self):
        agent = VehicleAgent(vehicle_id="v", position_m=100.0, speed_ms=10.0)
        assert agent.rear_m == pytest.approx(100.0 - VEHICLE_LENGTH_M)

    def test_commanded_speed_default(self):
        agent = VehicleAgent(
            vehicle_id="v", position_m=0.0, speed_ms=0.0, desired_speed=13.0
        )
        assert agent.commanded_speed() == 13.0

    def test_commanded_speed_with_controller(self):
        agent = VehicleAgent(
            vehicle_id="v",
            position_m=50.0,
            speed_ms=0.0,
            target_speed_at=lambda s: s / 10.0,
        )
        assert agent.commanded_speed() == pytest.approx(5.0)

    def test_controller_clamped_non_negative(self):
        agent = VehicleAgent(
            vehicle_id="v", position_m=0.0, speed_ms=0.0, target_speed_at=lambda s: -3.0
        )
        assert agent.commanded_speed() == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(speed_ms=-1.0),
            dict(length_m=0.0),
            dict(desired_speed=0.0),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(vehicle_id="v", position_m=0.0, speed_ms=0.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            VehicleAgent(**base)


class TestSimEvent:
    def test_str_format(self):
        event = SimEvent(time_s=12.5, vehicle_id="veh3", kind="enter", position_m=0.0)
        text = str(event)
        assert "veh3" in text and "enter" in text and "12.5" in text
