"""Stacked-autoencoder predictor: training mechanics and accuracy."""

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError, PredictionError
from repro.traffic.dataset import train_test_split_by_hour
from repro.traffic.sae import CALIBRATION_KEYS, SAEPredictor, _sigmoid
from repro.traffic.volume import VolumeGenerator


@pytest.fixture(scope="module")
def datasets():
    series = VolumeGenerator(seed=7).generate(35)
    return train_test_split_by_hour(series, test_hours=72, window=12)


@pytest.fixture(scope="module")
def fitted(datasets):
    train, _ = datasets
    sae = SAEPredictor(
        hidden_sizes=(16, 8), pretrain_epochs=10, finetune_epochs=80, seed=0
    )
    return sae.fit(train.features, train.targets)


class TestSigmoid:
    def test_range(self):
        x = np.linspace(-50.0, 50.0, 101)
        y = _sigmoid(x)
        assert np.all((y >= 0.0) & (y <= 1.0))

    def test_midpoint(self):
        assert _sigmoid(np.asarray([0.0]))[0] == pytest.approx(0.5)

    def test_no_overflow_extremes(self):
        y = _sigmoid(np.asarray([-1000.0, 1000.0]))
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1.0, abs=1e-12)


class TestTraining:
    def test_predict_before_fit_raises(self):
        sae = SAEPredictor()
        with pytest.raises(PredictionError):
            sae.predict(np.zeros((1, 4)))
        with pytest.raises(PredictionError):
            sae.encode(np.zeros((1, 4)))

    def test_loss_decreases(self, fitted):
        losses = fitted.training_loss_
        assert losses[-1] < losses[0]

    def test_deterministic_under_seed(self, datasets):
        train, test = datasets
        kwargs = dict(hidden_sizes=(8,), pretrain_epochs=3, finetune_epochs=10, seed=5)
        a = SAEPredictor(**kwargs).fit(train.features, train.targets)
        b = SAEPredictor(**kwargs).fit(train.features, train.targets)
        np.testing.assert_array_equal(a.predict(test.features), b.predict(test.features))

    def test_fit_returns_self(self, datasets):
        train, _ = datasets
        sae = SAEPredictor(hidden_sizes=(4,), pretrain_epochs=1, finetune_epochs=2)
        assert sae.fit(train.features[:50], train.targets[:50]) is sae

    def test_mismatched_shapes_rejected(self):
        sae = SAEPredictor()
        with pytest.raises(ConfigurationError):
            sae.fit(np.zeros((10, 4)), np.zeros(9))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hidden_sizes=()),
            dict(hidden_sizes=(0,)),
            dict(finetune_epochs=0),
            dict(batch_size=0),
            dict(learning_rate=0.0),
            dict(l2=-1.0),
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SAEPredictor(**kwargs)


class TestAccuracy:
    def test_beats_last_value_baseline(self, datasets, fitted):
        from repro.traffic.baselines import LastValuePredictor

        train, test = datasets
        sae_err = np.mean(np.abs(fitted.predict(test.features) - test.targets))
        lv_err = np.mean(np.abs(LastValuePredictor().predict(test) - test.targets))
        assert sae_err < lv_err

    def test_reasonable_mre(self, datasets, fitted):
        from repro.analysis.metrics import mean_relative_error

        _, test = datasets
        pred = test.denormalize(fitted.predict(test.features))
        real = test.denormalize(test.targets)
        assert mean_relative_error(pred, real, floor=20.0) < 0.15

    def test_predict_single_vector(self, datasets, fitted):
        _, test = datasets
        single = fitted.predict(test.features[0])
        assert single.shape == (1,)

    def test_encode_shape(self, datasets, fitted):
        _, test = datasets
        codes = fitted.encode(test.features[:5])
        assert codes.shape == (5, 8)
        assert np.all((codes >= 0.0) & (codes <= 1.0))


class TestCheckpointRoundTrip:
    @pytest.fixture(scope="class")
    def calibrated(self, datasets, fitted):
        _, test = datasets
        fitted.calibrate(test)
        return fitted

    def test_calibrate_before_fit_raises(self):
        sae = SAEPredictor(hidden_sizes=(4,))
        with pytest.raises(PredictionError):
            sae.calibrate(None)

    def test_calibrate_records_state(self, datasets, calibrated):
        _, test = datasets
        assert calibrated.is_calibrated
        assert calibrated.norm_min_ == test.scale_min
        assert calibrated.norm_max_ == test.scale_max
        assert calibrated.residuals_vph_.shape == (len(test.targets),)
        assert np.isfinite(calibrated.residuals_vph_).all()

    def test_save_load_round_trips_calibration(self, datasets, calibrated, tmp_path):
        path = tmp_path / "sae.npz"
        calibrated.save(path)
        restored = SAEPredictor.load(path, require_calibration=True)
        assert restored.is_calibrated
        assert restored.norm_min_ == calibrated.norm_min_
        assert restored.norm_max_ == calibrated.norm_max_
        np.testing.assert_array_equal(
            restored.residuals_vph_, calibrated.residuals_vph_
        )
        _, test = datasets
        np.testing.assert_array_equal(
            restored.predict(test.features), calibrated.predict(test.features)
        )

    def test_uncalibrated_checkpoint_fails_typed(self, datasets, tmp_path):
        train, _ = datasets
        sae = SAEPredictor(
            hidden_sizes=(4,), pretrain_epochs=1, finetune_epochs=1, seed=0
        )
        sae.fit(train.features, train.targets)
        path = tmp_path / "weights_only.npz"
        sae.save(path)
        with pytest.raises(CheckpointError) as excinfo:
            SAEPredictor.load(path, require_calibration=True)
        assert excinfo.value.path == str(path)
        assert tuple(excinfo.value.missing) == CALIBRATION_KEYS

    def test_uncalibrated_checkpoint_loads_without_demand(self, datasets, tmp_path):
        train, _ = datasets
        sae = SAEPredictor(
            hidden_sizes=(4,), pretrain_epochs=1, finetune_epochs=1, seed=0
        )
        sae.fit(train.features, train.targets)
        path = tmp_path / "weights_only.npz"
        sae.save(path)
        restored = SAEPredictor.load(path)
        assert not restored.is_calibrated
        np.testing.assert_array_equal(
            restored.predict(train.features), sae.predict(train.features)
        )
