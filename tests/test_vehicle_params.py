"""Vehicle and battery parameter validation."""

import pytest

from repro.errors import ConfigurationError
from repro.vehicle.params import (
    BatteryPackParams,
    VehicleParams,
    chevrolet_spark_ev,
    sony_vtc4_pack,
)


class TestBatteryPackParams:
    def test_paper_pack_values(self):
        pack = sony_vtc4_pack()
        assert pack.voltage_v == pytest.approx(399.0)
        assert pack.capacity_ah == pytest.approx(46.2)
        assert pack.cell_capacity_ah == pytest.approx(2.1)

    def test_cell_count(self):
        pack = sony_vtc4_pack()
        assert pack.cell_count == 96 * 22

    def test_parallel_strings_consistent_with_capacity(self):
        pack = sony_vtc4_pack()
        assert pack.parallel_strings * pack.cell_capacity_ah == pytest.approx(
            pack.capacity_ah
        )

    def test_energy_capacity(self):
        pack = BatteryPackParams(voltage_v=100.0, capacity_ah=10.0)
        assert pack.energy_capacity_j == pytest.approx(100.0 * 10.0 * 3600.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(voltage_v=0.0, capacity_ah=46.2),
            dict(voltage_v=399.0, capacity_ah=-1.0),
            dict(voltage_v=399.0, capacity_ah=46.2, series_cells=0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatteryPackParams(**kwargs)


class TestVehicleParams:
    def test_paper_defaults(self):
        params = chevrolet_spark_ev()
        assert params.mass_kg == pytest.approx(1300.0)
        assert params.frontal_area_m2 == pytest.approx(2.2)
        assert params.drag_coefficient == pytest.approx(0.33)
        assert params.rolling_resistance == pytest.approx(0.018)
        assert params.battery_efficiency == pytest.approx(0.95)
        assert params.powertrain_efficiency == pytest.approx(0.90)

    def test_comfort_acceleration_band(self):
        params = chevrolet_spark_ev()
        assert params.max_accel_ms2 == pytest.approx(2.5)
        assert params.min_accel_ms2 == pytest.approx(-1.5)

    def test_drivetrain_efficiency_product(self):
        params = chevrolet_spark_ev()
        assert params.drivetrain_efficiency == pytest.approx(0.95 * 0.90)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mass_kg=0.0),
            dict(frontal_area_m2=-1.0),
            dict(drag_coefficient=-0.1),
            dict(rolling_resistance=-0.01),
            dict(battery_efficiency=0.0),
            dict(powertrain_efficiency=1.2),
            dict(regen_efficiency=1.5),
            dict(max_accel_ms2=-1.0),
            dict(min_accel_ms2=0.5),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            VehicleParams(**kwargs)

    def test_frozen(self):
        params = chevrolet_spark_ev()
        with pytest.raises(AttributeError):
            params.mass_kg = 10.0
