"""Fixed-time traffic-light phase arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight


@pytest.fixture
def light():
    return TrafficLight(red_s=30.0, green_s=30.0)


class TestPhases:
    def test_cycle_length(self, light):
        assert light.cycle_s == 60.0

    def test_red_then_green(self, light):
        assert light.is_red(0.0)
        assert light.is_red(29.9)
        assert light.is_green(30.0)
        assert light.is_green(59.9)
        assert light.is_red(60.0)

    def test_offset_shifts_cycle(self):
        light = TrafficLight(red_s=30.0, green_s=30.0, offset_s=15.0)
        assert light.is_red(15.0)
        assert light.is_green(45.0)
        assert light.is_green(10.0)  # 10 s belongs to the previous cycle's green

    def test_time_in_cycle(self, light):
        assert light.time_in_cycle(65.0) == pytest.approx(5.0)

    def test_negative_time_wraps(self):
        light = TrafficLight(red_s=10.0, green_s=10.0)
        assert light.time_in_cycle(-5.0) == pytest.approx(15.0)

    def test_cycle_index_and_start(self, light):
        assert light.cycle_index(125.0) == 2
        assert light.cycle_start(125.0) == pytest.approx(120.0)


class TestTransitions:
    def test_next_green_start_during_red(self, light):
        assert light.next_green_start(10.0) == pytest.approx(30.0)

    def test_next_green_start_during_green(self, light):
        assert light.next_green_start(45.0) == pytest.approx(45.0)

    def test_next_red_start(self, light):
        assert light.next_red_start(45.0) == pytest.approx(60.0)
        assert light.next_red_start(10.0) == pytest.approx(10.0)


class TestGreenWindows:
    def test_windows_cover_horizon(self, light):
        windows = light.green_windows(180.0, start_s=0.0)
        assert windows == [(30.0, 60.0), (90.0, 120.0), (150.0, 180.0)]

    def test_window_clipped_at_start(self, light):
        windows = light.green_windows(20.0, start_s=45.0)
        assert windows[0] == (45.0, 60.0)

    def test_rejects_bad_horizon(self, light):
        with pytest.raises(ValueError):
            light.green_windows(0.0)


class TestValidation:
    def test_rejects_negative_red(self):
        with pytest.raises(ConfigurationError):
            TrafficLight(red_s=-1.0, green_s=10.0)

    def test_rejects_zero_green(self):
        with pytest.raises(ConfigurationError):
            TrafficLight(red_s=10.0, green_s=0.0)

    def test_all_green_light_allowed(self):
        light = TrafficLight(red_s=0.0, green_s=60.0)
        assert light.is_green(0.0)
        assert light.is_green(59.0)


class TestBoundaryConsistency:
    """Published green boundaries must be green by ``is_green`` itself.

    ``cycle_start + red_s`` rounds independently of the modulo phase
    test, so an unsnapped window start can sit a few ulps inside red —
    a plan targeting that instant would "hit the window" yet arrive on
    red (found by hypothesis on ``red_s=10.000000000000002``).
    """

    AWKWARD = TrafficLight(red_s=10.000000000000002, green_s=15.0, offset_s=10.0)

    def test_window_starts_are_green(self):
        for start, end in self.AWKWARD.green_windows(400.0, 0.0):
            assert self.AWKWARD.is_green(start), (start, end)
            assert end > start

    def test_next_green_start_is_green(self):
        t = 0.0
        while t < 400.0:
            onset = self.AWKWARD.next_green_start(t)
            assert self.AWKWARD.is_green(onset), (t, onset)
            t += 7.3

    def test_snap_preserves_round_timings(self):
        light = TrafficLight(red_s=30.0, green_s=30.0)
        assert light.green_windows(180.0, 0.0) == [
            (30.0, 60.0),
            (90.0, 120.0),
            (150.0, 180.0),
        ]
