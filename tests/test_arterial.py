"""The library-provided urban arterial corridor."""

import pytest

from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.arterial import ARTERIAL_DEMAND_VPH, arterial_arrival_rates, urban_arterial


class TestUrbanArterial:
    def test_geometry(self):
        road = urban_arterial()
        assert road.length_m == 6000.0
        assert len(road.signals) == 5
        assert [s.position_m for s in road.stop_signs] == [300.0]

    def test_signal_offsets_staggered(self):
        road = urban_arterial()
        offsets = [s.light.offset_s for s in road.signals]
        assert len(set(offsets)) > 1

    def test_demand_covers_every_signal(self):
        road = urban_arterial()
        rates = arterial_arrival_rates()
        assert set(rates) == set(road.signal_positions())
        assert set(ARTERIAL_DEMAND_VPH) == set(road.signal_positions())

    def test_custom_timing(self):
        road = urban_arterial(red_s=20.0, green_s=40.0)
        for site in road.signals:
            assert site.light.red_s == 20.0
            assert site.light.green_s == 40.0

    def test_plannable_end_to_end(self):
        road = urban_arterial()
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=arterial_arrival_rates(),
            config=PlannerConfig(v_step_ms=1.0, s_step_m=50.0, horizon_s=900.0),
        )
        solution = planner.plan(0.0, max_trip_time_s=planner.min_trip_time(0.0) + 20.0)
        assert solution.all_windows_hit
        assert len(solution.signal_arrivals) == 5
