"""Time-expanded DP solver: feasibility, optimality structure, windows."""

import numpy as np
import pytest

from repro.core.constraints import check_profile
from repro.core.cost import WindowSet
from repro.core.dp import DpSolver, TimeWindowConstraint
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.signal.queue import QueueWindow


@pytest.fixture(scope="module")
def solver(plain_road):
    return DpSolver(
        plain_road, v_step_ms=1.0, s_step_m=25.0, t_bin_s=1.0, horizon_s=300.0
    )


class TestBasicSolve:
    def test_unconstrained_plan_is_feasible(self, solver, plain_road):
        solution = solver.solve()
        report = check_profile(solution.profile, plain_road)
        assert report.ok, str(report)

    def test_plan_respects_stop_sign(self, solver, plain_road):
        solution = solver.solve()
        idx = int(np.argmin(np.abs(solver.positions - 300.0)))
        assert solution.profile.speeds_ms[idx] == 0.0
        assert solution.profile.dwell_s[idx] == pytest.approx(solver.stop_dwell_s)

    def test_boundary_speeds_zero(self, solver):
        solution = solver.solve()
        assert solution.profile.speeds_ms[0] == 0.0
        assert solution.profile.speeds_ms[-1] == 0.0

    def test_profile_timing_matches_dp_clock(self, solver):
        solution = solver.solve()
        assert solution.profile.total_time_s == pytest.approx(
            solution.trip_time_s, abs=1e-6
        )

    def test_energy_objective_matches_metered_energy(self, solver):
        solution = solver.solve()
        metered = solution.profile.energy(dt_s=0.1)
        metered_j = metered.net_mah / 1000.0 * 3600.0 * 399.0
        assert solution.energy_j == pytest.approx(metered_j, rel=0.05)

    def test_trip_cap_binds(self, solver):
        slow = solver.solve(max_trip_time_s=200.0)
        fast = solver.solve(max_trip_time_s=100.0)
        assert fast.trip_time_s <= 100.0 + 1e-6
        assert slow.energy_j <= fast.energy_j

    def test_impossible_cap_raises(self, solver):
        with pytest.raises(InfeasibleProblemError):
            solver.solve(max_trip_time_s=40.0)  # 800 m in 40 s at 15 m/s max

    def test_minimize_time_objective(self, solver):
        quick = solver.solve(minimize="time")
        cheap = solver.solve(minimize="energy")
        assert quick.trip_time_s <= cheap.trip_time_s
        assert cheap.energy_j <= quick.energy_j

    def test_unknown_objective_rejected(self, solver):
        with pytest.raises(ConfigurationError):
            solver.solve(minimize="comfort")

    def test_start_time_shifts_clock(self, solver):
        solution = solver.solve(start_time_s=500.0)
        assert solution.profile.arrival_times_s[0] == 500.0

    def test_deterministic(self, solver):
        a = solver.solve()
        b = solver.solve()
        np.testing.assert_array_equal(a.profile.speeds_ms, b.profile.speeds_ms)


class TestWindowConstraints:
    def _constraint(self, position, windows, mode="hard"):
        return TimeWindowConstraint(
            position_m=position,
            windows=WindowSet([QueueWindow(a, b) for a, b in windows]),
            mode=mode,
        )

    def test_hard_window_hit(self, solver):
        constraint = self._constraint(500.0, [(45.0, 55.0), (80.0, 95.0)])
        solution = solver.solve(constraints=[constraint])
        arrival = solution.signal_arrivals[500.0]
        assert solution.windows_hit[500.0], f"arrived at {arrival}"

    def test_unreachable_window_raises(self, solver):
        constraint = self._constraint(500.0, [(1.0, 5.0)])
        with pytest.raises(InfeasibleProblemError):
            solver.solve(constraints=[constraint])

    def test_penalty_mode_prefers_window(self, solver):
        constraint = self._constraint(500.0, [(45.0, 60.0)], mode="penalty")
        solution = solver.solve(constraints=[constraint])
        assert solution.windows_hit[500.0]

    def test_penalty_mode_survives_unreachable_window(self, solver):
        constraint = self._constraint(500.0, [(1.0, 5.0)], mode="penalty")
        solution = solver.solve(constraints=[constraint])
        assert not solution.windows_hit[500.0]
        assert solution.energy_j > 1.0e8  # paid the penalty

    def test_window_delays_arrival_vs_unconstrained(self, solver):
        free = solver.solve(minimize="time")
        free_arrival = free.profile.arrival_time_at(500.0)
        late_window = self._constraint(500.0, [(free_arrival + 20.0, free_arrival + 30.0)])
        solution = solver.solve(constraints=[late_window], minimize="time")
        assert solution.profile.arrival_time_at(500.0) >= free_arrival + 19.0

    def test_constraint_off_grid_rejected(self, solver):
        constraint = self._constraint(512.3, [(40.0, 60.0)])
        # 512.3 is within one grid step of 500/525, so it snaps; far off
        # the road must fail.
        far = TimeWindowConstraint(
            position_m=5000.0, windows=WindowSet([QueueWindow(1.0, 2.0)])
        )
        with pytest.raises(ConfigurationError):
            solver.solve(constraints=[far])

    def test_constraint_validation(self):
        with pytest.raises(ConfigurationError):
            TimeWindowConstraint(position_m=1.0, windows=WindowSet([]), mode="soft")
        with pytest.raises(ConfigurationError):
            TimeWindowConstraint(
                position_m=1.0, windows=WindowSet([]), penalty_j=0.0
            )


class TestSolverConstruction:
    def test_grid_includes_exact_speed_limit(self, plain_road):
        solver = DpSolver(plain_road, v_step_ms=2.0, s_step_m=50.0)
        assert solver.v_grid[-1] == pytest.approx(15.0)

    def test_invalid_resolutions_rejected(self, plain_road):
        for kwargs in (
            dict(v_step_ms=0.0),
            dict(s_step_m=-1.0),
            dict(t_bin_s=0.0),
            dict(horizon_s=0.0),
            dict(stop_dwell_s=-1.0),
        ):
            with pytest.raises(ConfigurationError):
                DpSolver(plain_road, **kwargs)

    def test_mandatory_stop_points_only_allow_zero(self, solver):
        for stop in (0.0, 300.0, 800.0):
            idx = int(np.argmin(np.abs(solver.positions - stop)))
            allowed = np.flatnonzero(solver._allowed[idx])
            assert list(allowed) == [0]
