"""Property-based fuzzing of the input contracts (hypothesis).

The contracts promise two invariants worth fuzzing rather than
enumerating:

1. **Strict mode never accepts junk** — any non-finite or out-of-range
   value in a fuzzed input either round-trips unchanged (it was valid)
   or raises a typed :class:`~repro.errors.InputValidationError`;
   nothing else escapes (no bare ``ValueError`` from a ``float()`` call,
   no silent acceptance).
2. **Repair output is contract-clean** — whatever repair mode returns
   must itself pass strict validation unchanged.  Repair may refuse, but
   it may never emit a half-fixed input.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.messages import PlanRequest
from repro.errors import InputValidationError
from repro.guard.contracts import (
    SPEED_CEILING_MS,
    validate_plan_request,
    validate_road_dict,
    validate_trace_rows,
    validate_volume_rows,
)
from repro.route.io import road_to_dict
from repro.route.us25 import us25_greenville_segment

any_float = st.floats(allow_nan=True, allow_infinity=True, width=32)
sane_speed = st.floats(min_value=0.0, max_value=30.0)


def _fresh_road_dict():
    return road_to_dict(us25_greenville_segment())


ROAD_SCALAR_FIELDS = ("length_m",)
ZONE_FIELDS = ("start_m", "end_m", "v_max_ms", "v_min_ms")
SIGNAL_FIELDS = ("position_m", "red_s", "green_s", "offset_s", "turn_ratio")


class TestRoadDictFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        value=any_float,
        field=st.sampled_from(ROAD_SCALAR_FIELDS + ZONE_FIELDS + SIGNAL_FIELDS),
        repair=st.booleans(),
    )
    def test_fuzzed_field_rejected_or_contract_clean(self, value, field, repair):
        data = _fresh_road_dict()
        if field in ROAD_SCALAR_FIELDS:
            data[field] = value
        elif field in ZONE_FIELDS:
            data["zones"][0] = {**data["zones"][0], field: value}
        else:
            data["signals"][0] = {**data["signals"][0], field: value}
        try:
            cleaned, _report = validate_road_dict(data, repair=repair)
        except InputValidationError:
            return
        # Accepted: the result must survive a strict re-validation.
        revalidated, report = validate_road_dict(cleaned, repair=False)
        assert not report

    @settings(max_examples=30, deadline=None)
    @given(extra=any_float, repair=st.booleans())
    def test_fuzzed_stop_sign_rejected_dropped_or_valid(self, extra, repair):
        data = _fresh_road_dict()
        data["stop_signs"] = list(data["stop_signs"]) + [extra]
        try:
            cleaned, _ = validate_road_dict(data, repair=repair)
        except InputValidationError:
            return
        for stop in cleaned["stop_signs"]:
            assert math.isfinite(stop) and 0.0 <= stop <= cleaned["length_m"]

    def test_valid_road_round_trips_in_both_modes(self):
        data = _fresh_road_dict()
        for repair in (False, True):
            cleaned, report = validate_road_dict(data, repair=repair)
            assert not report
            assert json.dumps(cleaned, sort_keys=True) == json.dumps(
                data, sort_keys=True
            )


class TestTraceRowsFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        times=st.lists(any_float, min_size=3, max_size=8),
        speeds=st.lists(st.one_of(any_float, sane_speed), min_size=3, max_size=8),
        repair=st.booleans(),
    )
    def test_fuzzed_rows_rejected_or_contract_clean(self, times, speeds, repair):
        n = min(len(times), len(speeds))
        rows = [(times[i], 10.0 * i, speeds[i]) for i in range(n)]
        try:
            cleaned, _ = validate_trace_rows(rows, repair=repair)
        except InputValidationError:
            return
        revalidated, report = validate_trace_rows(cleaned, repair=False)
        assert not report
        for t, s, v in cleaned:
            assert math.isfinite(t) and math.isfinite(s) and math.isfinite(v)
            assert 0.0 <= v <= SPEED_CEILING_MS

    @settings(max_examples=40, deadline=None)
    @given(
        order=st.permutations(list(range(5))),
        repair=st.booleans(),
    )
    def test_shuffled_timestamps_rejected_or_reordered_subset(self, order, repair):
        rows = [(float(order[i]), 10.0 * i, 5.0) for i in range(5)]
        try:
            cleaned, _ = validate_trace_rows(rows, repair=repair)
        except InputValidationError:
            return
        times = [t for t, _, _ in cleaned]
        assert times == sorted(times)
        assert len(set(times)) == len(times)


class TestVolumeRowsFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        volumes=st.lists(st.one_of(any_float, sane_speed), min_size=1, max_size=8),
        repair=st.booleans(),
    )
    def test_fuzzed_volumes_rejected_or_contract_clean(self, volumes, repair):
        rows = [(i, v) for i, v in enumerate(volumes)]
        try:
            cleaned, _ = validate_volume_rows(rows, repair=repair)
        except InputValidationError:
            return
        revalidated, report = validate_volume_rows(cleaned, repair=False)
        assert not report
        for _hour, volume in cleaned:
            assert math.isfinite(volume) and volume >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(gap_at=st.integers(min_value=1, max_value=4), repair=st.booleans())
    def test_hour_gaps_never_survive(self, gap_at, repair):
        rows = [(i if i < gap_at else i + 1, 10.0) for i in range(5)]
        with pytest.raises(InputValidationError):
            validate_volume_rows(rows, repair=repair)


class TestPlanRequestFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        depart=any_float,
        speed=st.one_of(any_float, sane_speed),
        position=st.one_of(any_float, st.floats(min_value=0.0, max_value=5000.0)),
    )
    def test_fuzzed_request_rejected_or_physically_sane(self, depart, speed, position):
        try:
            req = PlanRequest(
                vehicle_id="ev",
                depart_s=depart,
                position_m=position,
                speed_ms=speed,
            )
        except Exception:
            return  # the constructor's own checks fired first
        try:
            validate_plan_request(req, route_length_m=4200.0)
        except InputValidationError:
            return
        assert math.isfinite(req.depart_s)
        assert math.isfinite(req.speed_ms) and req.speed_ms <= SPEED_CEILING_MS
        assert math.isfinite(req.position_m) and req.position_m < 4200.0
