"""Wire-level chaos: seeded frame faults, containment, ladder recovery."""

import pytest

from repro.cloud.fleet import FleetStudy
from repro.cloud.messages import PlanRequest
from repro.cloud.netclient import NetworkPlanTransport
from repro.cloud.server import serve_in_background
from repro.cloud.service import CloudPlannerService
from repro.core.planner import QueueAwareDpPlanner
from repro.errors import CloudUnavailableError, ConfigurationError
from repro.guard.plan_check import PlanValidator
from repro.guard.supervisor import SafetySupervisor
from repro.resilience.client import ResilientPlanClient
from repro.resilience.ladder import TIER_QUEUE_DP, TIERS, DegradationLadder
from repro.resilience.netfaults import ChaosProxy, NetFaultSpec
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


def _build_service(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


class TestNetFaultSpec:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            NetFaultSpec(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            NetFaultSpec(truncate_rate=-0.1)
        with pytest.raises(ConfigurationError):
            NetFaultSpec(delay_s=-1.0)

    def test_decide_is_deterministic(self):
        spec = NetFaultSpec.uniform(0.3, seed=42)
        first = [spec.decide("c2s", 0, i) for i in range(50)]
        second = [spec.decide("c2s", 0, i) for i in range(50)]
        assert first == second
        # Different seeds give different schedules.
        other = NetFaultSpec.uniform(0.3, seed=43)
        assert [other.decide("c2s", 0, i) for i in range(50)] != first

    def test_directions_and_connections_draw_independently(self):
        spec = NetFaultSpec.uniform(0.5, seed=1)
        a = [spec.decide("c2s", 0, i) for i in range(30)]
        b = [spec.decide("s2c", 0, i) for i in range(30)]
        c = [spec.decide("c2s", 1, i) for i in range(30)]
        assert a != b and a != c

    def test_zero_spec_never_faults(self):
        spec = NetFaultSpec()
        assert all(
            spec.decide("c2s", conn, i) == ("pass", False)
            for conn in range(3)
            for i in range(100)
        )

    def test_actions_are_well_typed(self):
        spec = NetFaultSpec.uniform(0.5, seed=9)
        actions = {spec.decide("s2c", 0, i)[0] for i in range(200)}
        assert actions <= {"pass", "drop", "truncate", "duplicate"}
        assert len(actions) > 1  # at 50% the schedule actually faults


class TestChaosProxyTransparent:
    def test_zero_fault_rate_is_bit_identical(self, us25, coarse_config):
        requests = [
            PlanRequest(f"ev{i}", depart_s=float(9 * i % 40), max_trip_time_s=320.0)
            for i in range(4)
        ]
        in_process = _build_service(us25, coarse_config)
        expected = [in_process.request(req) for req in requests]

        with serve_in_background(_build_service(us25, coarse_config)) as handle:
            with ChaosProxy(handle.address, NetFaultSpec(seed=5)) as proxy:
                transport = NetworkPlanTransport(*proxy.address, timeout_s=60.0)
                got = [transport.request(req) for req in requests]
                transport.close()
                stats = proxy.stats_snapshot()
                assert stats.faults == 0
                assert stats.passed == stats.frames

        for want, have in zip(expected, got):
            assert have.vehicle_id == want.vehicle_id
            assert have.energy_mah == want.energy_mah
            assert have.trip_time_s == want.trip_time_s
            assert have.cache_hit == want.cache_hit
            assert list(have.profile.positions_m) == list(want.profile.positions_m)
            assert list(have.profile.speeds_ms) == list(want.profile.speeds_ms)

    def test_drop_surfaces_as_typed_timeout(self, us25, coarse_config):
        with serve_in_background(_build_service(us25, coarse_config)) as handle:
            spec = NetFaultSpec(drop_rate=1.0, seed=3)
            with ChaosProxy(handle.address, spec) as proxy:
                transport = NetworkPlanTransport(*proxy.address, timeout_s=0.3)
                with pytest.raises(CloudUnavailableError) as excinfo:
                    transport.request(PlanRequest("ev", depart_s=0.0))
                assert excinfo.value.reason == "timeout"
                transport.close()
                assert proxy.stats_snapshot().dropped >= 1


class TestChaosLadderRecovery:
    def test_total_wire_death_degrades_to_local_tier(self, us25, coarse_config):
        # Every frame dropped: the cloud is unreachable through the
        # proxy, so the ladder must serve a local tier — no hang.
        with serve_in_background(_build_service(us25, coarse_config)) as handle:
            with ChaosProxy(handle.address, NetFaultSpec(drop_rate=1.0, seed=1)) as proxy:
                transport = NetworkPlanTransport(*proxy.address, timeout_s=0.2)
                client = ResilientPlanClient(transport, max_attempts=2, deadline_s=30.0)
                ladder = DegradationLadder(
                    client, us25, arrival_rates=RATE, config=coarse_config
                )
                plan = ladder.plan(0.0, max_trip_time_s=320.0)
                assert plan.tier != TIER_QUEUE_DP
                assert plan.tier in TIERS
                transport.close()

    def test_heavy_chaos_fleet_completes_with_zero_guard_violations(
        self, us25, coarse_config
    ):
        # The acceptance drive: 30% per-frame faults in every mode, a
        # supervised ladder, a stream of departures.  Every departure
        # must complete (cloud tier or degraded), every served profile
        # must pass its safety audit, and nothing may hang.
        validator = PlanValidator(us25)
        supervisor = SafetySupervisor(validator)
        with serve_in_background(_build_service(us25, coarse_config)) as handle:
            spec = NetFaultSpec.uniform(0.3, seed=11, delay_s=0.01)
            with ChaosProxy(handle.address, spec) as proxy:
                transport = NetworkPlanTransport(*proxy.address, timeout_s=0.5)
                client = ResilientPlanClient(
                    transport,
                    max_attempts=4,
                    deadline_s=60.0,
                    breaker_threshold=4,
                    breaker_cooldown_s=5.0,
                )
                ladder = DegradationLadder(
                    client,
                    us25,
                    arrival_rates=RATE,
                    config=coarse_config,
                    supervisor=supervisor,
                )
                plans = [
                    ladder.plan(float(10 * i), max_trip_time_s=320.0)
                    for i in range(6)
                ]
                chaos = proxy.stats_snapshot()
                transport.close()

        assert len(plans) == 6  # every departure completed
        assert chaos.faults > 0  # the proxy actually bit
        for plan in plans:
            assert plan.tier in TIERS
            if plan.profile is not None:
                assert validator.check_profile(plan.profile).ok
        # Zero guard violations: the supervisor never had to reject or
        # safe-stop — wire chaos corrupts delivery, never plan content.
        assert supervisor.stats.plans_rejected == 0
        assert supervisor.stats.safe_stops == 0


class TestFleetViaWire:
    def test_via_transport_bit_identical_at_fault_zero(self, us25, coarse_config):
        plain = FleetStudy(
            _build_service(us25, coarse_config), us25, fleet_rate_vph=60.0, seed=3
        ).run(duration_s=600.0)

        service = _build_service(us25, coarse_config)
        with serve_in_background(service, request_timeout_s=120.0) as handle:
            transport = NetworkPlanTransport(*handle.address, timeout_s=120.0)
            wired = FleetStudy(
                service, us25, fleet_rate_vph=60.0, seed=3, via=transport
            ).run(duration_s=600.0)
            transport.close()

        assert wired.n_vehicles == plain.n_vehicles
        assert wired.n_failed == plain.n_failed == 0
        assert wired.planned_energy_mah == plain.planned_energy_mah
        assert wired.mean_trip_time_s == plain.mean_trip_time_s

    def test_via_rejects_workers(self, us25, coarse_config):
        service = _build_service(us25, coarse_config)
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, via=object(), workers=2)
