"""TraCI-style facade over the simulator."""

import pytest

from repro.errors import SimulationError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone
from repro.signal.light import TrafficLight
from repro.sim.simulator import CorridorSimulator
from repro.sim.traci import TraciFacade


@pytest.fixture
def facade():
    road = RoadSegment(
        name="traci road",
        length_m=1000.0,
        zones=[SpeedLimitZone(0.0, 1000.0, v_max_ms=15.0)],
        signals=[
            SignalSite(position_m=500.0, light=TrafficLight(red_s=10.0, green_s=10.0))
        ],
    )
    sim = CorridorSimulator(road, arrivals_s=[0.0, 5.0], seed=0)
    return TraciFacade(sim)


class TestTraci:
    def test_simulation_step_advances_clock(self, facade):
        t0 = facade.simulation_time()
        t1 = facade.simulation_step()
        assert t1 > t0

    def test_vehicle_listing_and_state(self, facade):
        for _ in range(4):
            facade.simulation_step()
        ids = facade.vehicle_id_list()
        assert "veh0" in ids
        pos = facade.vehicle_get_position("veh0")
        speed = facade.vehicle_get_speed("veh0")
        assert pos > 0.0
        assert speed >= 0.0

    def test_unknown_vehicle_raises(self, facade):
        with pytest.raises(SimulationError):
            facade.vehicle_get_speed("ghost")

    def test_set_speed_profile_takes_effect(self, facade):
        for _ in range(4):
            facade.simulation_step()
        facade.vehicle_set_speed_profile("veh0", lambda s: 3.0)
        for _ in range(20):
            facade.simulation_step()
        assert facade.vehicle_get_speed("veh0") == pytest.approx(3.0, abs=0.3)

    def test_trafficlight_state(self, facade):
        assert facade.trafficlight_get_state(500.0) == "r"
        while facade.simulation_time() < 11.0:
            facade.simulation_step()
        assert facade.trafficlight_get_state(500.0) == "g"

    def test_result_snapshot(self, facade):
        for _ in range(10):
            facade.simulation_step()
        result = facade.result()
        assert result.vehicles_entered >= 1
