"""High-level planners: baseline, queue-aware and unconstrained."""

import pytest

from repro.core.planner import (
    BaselineDpPlanner,
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.errors import ConfigurationError
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def config():
    return PlannerConfig(
        v_step_ms=1.0, s_step_m=25.0, t_bin_s=1.0, horizon_s=300.0, window_margin_s=1.0
    )


@pytest.fixture(scope="module")
def planners(short_road, config):
    return {
        "unconstrained": UnconstrainedDpPlanner(short_road, config=config),
        "baseline": BaselineDpPlanner(short_road, config=config),
        "proposed": QueueAwareDpPlanner(short_road, arrival_rates=RATE, config=config),
    }


class TestPlannerBehaviour:
    def test_all_planners_produce_feasible_plans(self, planners, short_road):
        from repro.core.constraints import check_profile

        for name, planner in planners.items():
            solution = planner.plan(0.0, max_trip_time_s=150.0)
            assert check_profile(solution.profile, short_road).ok, name

    def test_unconstrained_cheapest(self, planners):
        energies = {
            name: planner.plan(0.0, max_trip_time_s=150.0).energy_j
            for name, planner in planners.items()
        }
        assert energies["unconstrained"] <= energies["baseline"] + 1e-6
        assert energies["unconstrained"] <= energies["proposed"] + 1e-6

    def test_baseline_hits_green_window(self, planners, short_road):
        solution = planners["baseline"].plan(0.0, max_trip_time_s=150.0)
        arrival = solution.signal_arrivals[600.0]
        assert short_road.signals[0].light.is_green(arrival)

    def test_proposed_arrival_after_queue_clears(self, planners, short_road):
        planner = planners["proposed"]
        solution = planner.plan(0.0, max_trip_time_s=150.0)
        arrival = solution.signal_arrivals[600.0]
        light = short_road.signals[0].light
        t_star = planner.queue_model(600.0).clear_time(RATE)
        cycle_time = light.time_in_cycle(arrival)
        assert cycle_time >= t_star - 1e-6
        assert solution.all_windows_hit

    def test_proposed_never_earlier_in_cycle_than_baseline_window(self, planners, short_road):
        base = planners["baseline"].plan(0.0, minimize="time")
        prop = planners["proposed"].plan(0.0, minimize="time")
        light = short_road.signals[0].light
        base_phase = light.time_in_cycle(base.signal_arrivals[600.0])
        prop_phase = light.time_in_cycle(prop.signal_arrivals[600.0])
        # The earliest queue-aware arrival is never before the earliest
        # green arrival within the same cycle geometry.
        assert prop.trip_time_s >= base.trip_time_s - 1e-6

    def test_min_trip_time_is_lower_bound(self, planners):
        planner = planners["proposed"]
        floor = planner.min_trip_time(0.0)
        solution = planner.plan(0.0, max_trip_time_s=floor + 1.0)
        assert solution.trip_time_s <= floor + 1.0 + 1e-6

    def test_departure_shifts_plan(self, planners):
        a = planners["proposed"].plan(0.0, max_trip_time_s=150.0)
        b = planners["proposed"].plan(20.0, max_trip_time_s=150.0)
        assert a.signal_arrivals[600.0] != b.signal_arrivals[600.0]


class TestConfiguration:
    def test_rate_mapping_per_signal(self, short_road, config):
        planner = QueueAwareDpPlanner(
            short_road, arrival_rates={600.0: RATE}, config=config
        )
        assert planner.plan(0.0, max_trip_time_s=150.0).all_windows_hit

    def test_missing_rate_for_signal_rejected(self, short_road, config):
        planner = QueueAwareDpPlanner(
            short_road, arrival_rates={999.0: RATE}, config=config
        )
        with pytest.raises(ConfigurationError):
            planner.plan(0.0)

    def test_callable_rate_accepted(self, short_road, config):
        planner = QueueAwareDpPlanner(
            short_road, arrival_rates=lambda t: RATE, config=config
        )
        assert planner.plan(0.0, max_trip_time_s=150.0).all_windows_hit

    def test_zero_v_min_road_rejected(self, plain_road, config):
        from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone
        from repro.signal.light import TrafficLight

        road = RoadSegment(
            name="no vmin",
            length_m=500.0,
            zones=[SpeedLimitZone(0.0, 500.0, v_max_ms=15.0, v_min_ms=0.0)],
            signals=[
                SignalSite(position_m=250.0, light=TrafficLight(red_s=10, green_s=10))
            ],
        )
        with pytest.raises(ConfigurationError):
            QueueAwareDpPlanner(road, arrival_rates=RATE, config=config)

    def test_planner_config_validation(self):
        with pytest.raises(ConfigurationError):
            PlannerConfig(window_margin_s=-1.0)
        with pytest.raises(ConfigurationError):
            PlannerConfig(constraint_mode="sometimes")
