"""The TCP front door: admission, containment, deadlines, drain."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.cloud import wire
from repro.cloud.framing import encode_frame
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.netclient import NetworkPlanTransport
from repro.cloud.server import PlanServer, serve_in_background
from repro.cloud.service import CloudPlannerService
from repro.core.planner import QueueAwareDpPlanner
from repro.core.profile import VelocityProfile
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
    ServerOverloadError,
    WireProtocolError,
)
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


def _profile(depart_s: float) -> VelocityProfile:
    return VelocityProfile(
        positions_m=[0.0, 100.0],
        speeds_ms=[10.0, 10.0],
        dwell_s=[0.0, 0.0],
        start_time_s=depart_s,
    )


class StubPlannerService:
    """A dispatcher-compatible service answering canned plans.

    ``gate`` (when set) blocks every request until released, letting
    tests hold work in flight; ``fail_ids`` answer
    :class:`PlanningFailedError` instead.
    """

    cache_enabled = False
    artifact_store = None

    def __init__(self):
        self.calls = 0
        self.gate = None
        self.entered = threading.Event()
        self.fail_ids = set()
        self._mutex = threading.Lock()

    def coalesce_key(self, req):
        # Unique per request: these tests want no coalescing.
        return (req.vehicle_id, req.depart_s, req.position_m)

    def request(self, req):
        with self._mutex:
            self.calls += 1
        if req.vehicle_id in self.fail_ids:
            raise PlanningFailedError(
                "infeasible", vehicle_id=req.vehicle_id, depart_s=req.depart_s
            )
        if self.gate is not None:
            self.entered.set()
            assert self.gate.wait(10.0), "test forgot to release the gate"
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=_profile(req.depart_s),
            energy_mah=123.0,
            trip_time_s=45.0,
            cache_hit=False,
            compute_time_s=0.001,
        )

    # stats_document() composition hooks
    def stats_snapshot(self):
        from repro.cloud.service import ServiceStats

        return ServiceStats()

    def cache_stats(self):
        from repro.cloud.plan_cache import CacheStats

        return CacheStats(), CacheStats(), CacheStats()


def _raw_exchange(address, payload: bytes, timeout=5.0) -> bytes:
    """One frame out, one frame back, over a fresh socket."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(encode_frame(payload))
        return _read_one_frame(sock)


def _read_one_frame(sock) -> bytes:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        assert chunk, "connection closed before a frame arrived"
        header += chunk
    (size,) = struct.unpack(">I", header)
    body = b""
    while len(body) < size:
        chunk = sock.recv(size - len(body))
        assert chunk, "connection closed mid-frame"
        body += chunk
    return body


class TestValidation:
    def test_bad_parameters(self):
        service = StubPlannerService()
        with pytest.raises(ConfigurationError):
            PlanServer(service, max_pending=0)
        with pytest.raises(ConfigurationError):
            PlanServer(service, request_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            PlanServer(service, idle_timeout_s=-1.0)


class TestServing:
    def test_plan_roundtrip_and_counters(self):
        service = StubPlannerService()
        with serve_in_background(service) as handle:
            transport = NetworkPlanTransport(*handle.address)
            resp = transport.request(PlanRequest("ev0", depart_s=3.0))
            assert resp.vehicle_id == "ev0"
            assert resp.energy_mah == 123.0
            assert resp.profile.start_time_s == 3.0
            transport.close()
            # ``served`` is counted after the response write completes,
            # so the client can hold the response an instant before the
            # loop thread bumps the counter — poll briefly.
            deadline = time.monotonic() + 5.0
            while (
                handle.stats_snapshot().served < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = handle.stats_snapshot()
            assert stats.plan_requests == 1
            assert stats.served == 1
            assert stats.busy_rejections == 0

    def test_health_and_stats_kinds(self):
        service = StubPlannerService()
        with serve_in_background(service, max_pending=7) as handle:
            transport = NetworkPlanTransport(*handle.address)
            health = transport.health()
            assert health.status == wire.HEALTH_OK
            assert not health.draining
            assert health.capacity == 7
            document = transport.server_stats()
            assert document["schema"] == "repro.cloud.stats/v1"
            assert document["server"]["health_requests"] == 1
            assert document["server"]["max_pending"] == 7
            transport.close()

    def test_planning_failure_is_typed_not_fatal(self):
        service = StubPlannerService()
        service.fail_ids.add("doomed")
        with serve_in_background(service) as handle:
            transport = NetworkPlanTransport(*handle.address)
            with pytest.raises(PlanningFailedError):
                transport.request(PlanRequest("doomed", depart_s=0.0))
            # Same connection still serves the next vehicle.
            resp = transport.request(PlanRequest("fine", depart_s=0.0))
            assert resp.vehicle_id == "fine"
            transport.close()
            assert handle.stats_snapshot().planning_failures == 1


class TestContainment:
    def test_garbage_payload_answers_typed_and_connection_survives(self):
        service = StubPlannerService()
        with serve_in_background(service) as handle:
            with socket.create_connection(handle.address, timeout=5.0) as sock:
                sock.sendall(encode_frame(b"this is not json"))
                err = wire.decode_message(_read_one_frame(sock))
                assert err[0] == wire.ERROR_KIND
                assert err[1].code == wire.ERROR_PROTOCOL
                assert err[1].retryable is False
                # The framing was intact, so the connection lives on.
                sock.sendall(
                    encode_frame(wire.encode_request(PlanRequest("ev1", depart_s=0.0)))
                )
                kind, resp = wire.decode_message(_read_one_frame(sock))
                assert kind == wire.RESPONSE_KIND
                assert resp.vehicle_id == "ev1"
            stats = handle.stats_snapshot()
            assert stats.protocol_errors == 1
            assert stats.malformed_frames == 0

    def test_broken_framing_answers_typed_then_closes(self):
        service = StubPlannerService()
        with serve_in_background(service, max_frame_bytes=1024) as handle:
            with socket.create_connection(handle.address, timeout=5.0) as sock:
                sock.sendall(struct.pack(">I", 0xFFFFFFFF))  # hostile header
                err = wire.decode_message(_read_one_frame(sock))
                assert err[1].code == wire.ERROR_PROTOCOL
                assert sock.recv(1) == b""  # server closed the stream
            # One bad client never takes down the accept loop.
            transport = NetworkPlanTransport(*handle.address)
            assert transport.request(PlanRequest("ev2", depart_s=0.0)).vehicle_id == "ev2"
            transport.close()
            stats = handle.stats_snapshot()
            assert stats.malformed_frames == 1

    def test_truncated_stream_counted_on_eof(self):
        service = StubPlannerService()
        with serve_in_background(service) as handle:
            sock = socket.create_connection(handle.address, timeout=5.0)
            sock.sendall(struct.pack(">I", 100) + b"only-part")
            sock.close()  # EOF mid-frame
            deadline = threading.Event()
            for _ in range(50):
                if handle.stats_snapshot().malformed_frames:
                    break
                deadline.wait(0.1)
            assert handle.stats_snapshot().malformed_frames == 1

    def test_client_pushing_server_kinds_is_off_protocol(self):
        service = StubPlannerService()
        with serve_in_background(service) as handle:
            payload = wire.encode_health_response(
                wire.HealthStatus(status="ok", in_flight=0, capacity=1)
            )
            kind, err = wire.decode_message(_raw_exchange(handle.address, payload))
            assert kind == wire.ERROR_KIND
            assert err.code == wire.ERROR_PROTOCOL


class TestAdmissionControl:
    def test_overload_sheds_typed_busy(self):
        service = StubPlannerService()
        service.gate = threading.Event()
        with serve_in_background(service, max_pending=1, workers=2) as handle:
            blocker = NetworkPlanTransport(*handle.address)
            holder = {}

            def occupy():
                try:
                    holder["resp"] = blocker.request(PlanRequest("slow", depart_s=0.0))
                except Exception as exc:  # pragma: no cover - failure detail
                    holder["err"] = exc

            thread = threading.Thread(target=occupy)
            thread.start()
            assert service.entered.wait(5.0)
            # The admission slot is held: the next request is shed.
            shed = NetworkPlanTransport(*handle.address)
            with pytest.raises(ServerOverloadError) as excinfo:
                shed.request(PlanRequest("extra", depart_s=1.0))
            assert excinfo.value.reason == "busy"
            assert excinfo.value.capacity == 1
            assert excinfo.value.queue_depth == 1
            shed.close()
            service.gate.set()
            thread.join(timeout=5.0)
            assert holder["resp"].vehicle_id == "slow"
            blocker.close()
            stats = handle.stats_snapshot()
            assert stats.busy_rejections == 1
            assert stats.drain_rejections == 0
            assert stats.peak_in_flight == 1

    def test_busy_feeds_the_circuit_breaker(self):
        from repro.resilience.client import BREAKER_OPEN, ResilientPlanClient

        service = StubPlannerService()
        service.gate = threading.Event()
        with serve_in_background(service, max_pending=1, workers=2) as handle:
            blocker = NetworkPlanTransport(*handle.address)
            thread = threading.Thread(
                target=lambda: blocker.request(PlanRequest("slow", depart_s=0.0))
            )
            thread.start()
            assert service.entered.wait(5.0)
            transport = NetworkPlanTransport(*handle.address)
            client = ResilientPlanClient(
                transport, max_attempts=2, breaker_threshold=1, deadline_s=60.0
            )
            with pytest.raises(CloudUnavailableError) as excinfo:
                client.request(PlanRequest("ev", depart_s=0.0), now_s=0.0)
            assert excinfo.value.reason == "busy"
            assert client.stats.busy_rejections == 2  # both attempts shed
            assert client.stats.breaker_state == BREAKER_OPEN
            transport.close()
            service.gate.set()
            thread.join(timeout=5.0)
            blocker.close()


class TestGracefulDrain:
    def test_drain_protocol(self, tmp_path):
        """In-flight completes; drain-time requests get BUSY; new
        connects are refused; the stats document flushes exactly once."""
        stats_path = tmp_path / "server_stats.json"
        service = StubPlannerService()
        service.gate = threading.Event()
        handle = serve_in_background(
            service, max_pending=4, workers=2, stats_path=str(stats_path)
        )
        address = handle.address

        # Hold one admitted request in flight inside the planner.
        in_flight = NetworkPlanTransport(*address)
        holder = {}

        def occupy():
            try:
                holder["resp"] = in_flight.request(PlanRequest("held", depart_s=0.0))
            except Exception as exc:  # pragma: no cover - failure detail
                holder["err"] = exc

        occupier = threading.Thread(target=occupy)
        occupier.start()
        assert service.entered.wait(5.0)

        # A second, live connection opened BEFORE the drain begins.
        survivor = NetworkPlanTransport(*address)
        assert survivor.health().status == wire.HEALTH_OK

        # Start the drain concurrently; it must wait for the held plan.
        drainer = threading.Thread(target=lambda: holder.update(doc=handle.drain()))
        drainer.start()
        for _ in range(100):
            if handle.server.draining:
                break
            threading.Event().wait(0.05)
        assert handle.server.draining

        # 1. Queued-but-unadmitted work is shed with a typed BUSY.
        with pytest.raises(ServerOverloadError):
            survivor.request(PlanRequest("late", depart_s=1.0))
        # Health on the live connection reports the drain.
        assert survivor.health().status == wire.HEALTH_DRAINING

        # 2. New connects are refused (the listener is closed).
        fresh = NetworkPlanTransport(*address, timeout_s=1.0)
        with pytest.raises(CloudUnavailableError):
            fresh.request(PlanRequest("new", depart_s=2.0))

        # 3. The in-flight request completes and its response is written.
        service.gate.set()
        occupier.join(timeout=10.0)
        assert holder.get("resp") is not None, holder.get("err")
        assert holder["resp"].vehicle_id == "held"

        drainer.join(timeout=10.0)
        document = holder["doc"]
        assert document["server"]["served"] == 1
        assert document["server"]["drain_rejections"] == 1

        # 4. The stats document flushed exactly once, to the file too.
        on_disk = json.loads(stats_path.read_text())
        assert on_disk["server"]["served"] == 1
        first_flush = handle.final_stats
        assert handle.drain() is first_flush  # idempotent: same document
        assert json.loads(stats_path.read_text()) == on_disk

        in_flight.close()
        survivor.close()

    def test_context_manager_drains(self):
        service = StubPlannerService()
        with serve_in_background(service) as handle:
            transport = NetworkPlanTransport(*handle.address)
            transport.request(PlanRequest("ev", depart_s=0.0))
            transport.close()
        assert handle.final_stats is not None
        assert handle.final_stats["server"]["served"] == 1


class TestWireIdentity:
    """Over-the-wire serving is bit-identical to in-process serving."""

    def test_responses_bit_identical_to_in_process(self, us25, coarse_config):
        def build():
            planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
            return CloudPlannerService(planner)

        requests = [
            PlanRequest(f"ev{i}", depart_s=float(7 * i % 40), max_trip_time_s=320.0)
            for i in range(6)
        ]
        in_process = build()
        expected = [in_process.request(req) for req in requests]

        served_service = build()
        with serve_in_background(served_service) as handle:
            transport = NetworkPlanTransport(*handle.address, timeout_s=60.0)
            got = [transport.request(req) for req in requests]
            transport.close()

        for want, have in zip(expected, got):
            assert have.vehicle_id == want.vehicle_id
            assert have.energy_mah == want.energy_mah
            assert have.trip_time_s == want.trip_time_s
            assert have.cache_hit == want.cache_hit
            assert list(have.profile.positions_m) == list(want.profile.positions_m)
            assert list(have.profile.speeds_ms) == list(want.profile.speeds_ms)
            assert list(have.profile.dwell_s) == list(want.profile.dwell_s)
            assert have.profile.start_time_s == want.profile.start_time_s


class TestCorridorServing:
    """Sharded serving behind the front door — v1 clients included."""

    def _routed_stack(self, coarse_config):
        from repro.cloud.registry import builtin_catalog
        from repro.cloud.router import PlanRouter

        return PlanRouter(builtin_catalog(config=coarse_config))

    def test_v1_client_served_unchanged_against_default_corridor(
        self, coarse_config
    ):
        from repro.cloud.registry import builtin_catalog

        router = self._routed_stack(coarse_config)
        direct = builtin_catalog(config=coarse_config).service("us25")
        req = PlanRequest(vehicle_id="legacy", depart_s=30.0)
        expected = direct.request(req)
        with serve_in_background(router) as handle:
            transport = NetworkPlanTransport(
                handle.address[0], handle.address[1], wire_version=1
            )
            with transport:
                response = transport.request(req)
                health = transport.health()
            # Raw wire check: the v1 request truly goes out without a
            # corridor key, and the server answers in the v1 dialect.
            reply = _raw_exchange(
                handle.address, wire.encode_request(req, version=1)
            )
        assert response.energy_mah == expected.energy_mah
        assert response.trip_time_s == expected.trip_time_s
        assert response.corridor_id == "us25"
        assert health.status == wire.HEALTH_OK
        payload = json.loads(reply)
        assert payload["wire_version"] == 1
        assert "corridor_id" not in payload

    def test_v2_clients_address_corridors_through_one_server(
        self, coarse_config
    ):
        router = self._routed_stack(coarse_config)
        with serve_in_background(router) as handle:
            transport = NetworkPlanTransport(handle.address[0], handle.address[1])
            with transport:
                a = transport.request(
                    PlanRequest(
                        vehicle_id="a", depart_s=30.0, corridor_id="elm-street"
                    )
                )
                b = transport.request(
                    PlanRequest(
                        vehicle_id="b", depart_s=30.0, corridor_id="airport-loop"
                    )
                )
            document = handle.drain()
        assert a.corridor_id == "elm-street"
        assert b.corridor_id == "airport-loop"
        assert a.energy_mah != b.energy_mah
        assert document["router"]["routed"] == 2
        assert set(document["corridors"]) == {"elm-street", "airport-loop"}

    def test_unknown_corridor_is_a_typed_wire_rejection(self, coarse_config):
        router = self._routed_stack(coarse_config)
        with serve_in_background(router) as handle:
            transport = NetworkPlanTransport(handle.address[0], handle.address[1])
            with transport:
                with pytest.raises(WireProtocolError) as excinfo:
                    transport.request(
                        PlanRequest(
                            vehicle_id="x", depart_s=30.0, corridor_id="route-66"
                        )
                    )
                # The connection survives the rejection.
                ok = transport.request(
                    PlanRequest(vehicle_id="y", depart_s=30.0)
                )
            stats = handle.stats_snapshot()
        assert "route-66" in str(excinfo.value)
        assert ok.corridor_id == "us25"
        assert stats.protocol_errors == 1
        assert stats.served == 1

    def test_v1_transport_refuses_nondefault_corridors_client_side(self):
        transport = NetworkPlanTransport("127.0.0.1", 1, wire_version=1)
        with pytest.raises(WireProtocolError):
            transport.request(
                PlanRequest(vehicle_id="x", depart_s=1.0, corridor_id="elm-street")
            )
        with pytest.raises(ConfigurationError):
            NetworkPlanTransport("127.0.0.1", 1, wire_version=99)
