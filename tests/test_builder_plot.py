"""Corridor builder and ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_plot, plot_speed_profiles
from repro.errors import ConfigurationError
from repro.route.builder import CorridorBuilder


class TestCorridorBuilder:
    def build_sample(self):
        return (
            CorridorBuilder("main street", length_m=3000.0)
            .speed_limits(v_max_kmh=60.0, v_min_kmh=35.0)
            .zone(1000.0, 1600.0, v_max_kmh=40.0)
            .stop_sign(at_m=200.0)
            .signal(at_m=1200.0, red_s=25.0, green_s=35.0, offset_s=10.0)
            .signal(at_m=2400.0, red_s=25.0, green_s=35.0)
            .grade([0.0, 3000.0], [0.0, 0.01])
            .build()
        )

    def test_zones_tile_with_override(self):
        road = self.build_sample()
        assert len(road.zones) == 3
        assert road.v_max_at(500.0) == pytest.approx(60.0 / 3.6)
        assert road.v_max_at(1300.0) == pytest.approx(40.0 / 3.6)
        assert road.v_max_at(2000.0) == pytest.approx(60.0 / 3.6)

    def test_features_placed(self):
        road = self.build_sample()
        assert [s.position_m for s in road.stop_signs] == [200.0]
        assert road.signal_positions() == [1200.0, 2400.0]
        assert road.signals[0].light.offset_s == 10.0

    def test_grade_attached(self):
        road = self.build_sample()
        assert road.grade_at(1500.0) == pytest.approx(0.005)

    def test_signals_sorted_regardless_of_insert_order(self):
        road = (
            CorridorBuilder("r", 1000.0)
            .speed_limits(50.0)
            .signal(at_m=800.0, red_s=10, green_s=10)
            .signal(at_m=300.0, red_s=10, green_s=10)
            .build()
        )
        assert road.signal_positions() == [300.0, 800.0]

    def test_built_road_plannable(self):
        from repro.core.planner import PlannerConfig, UnconstrainedDpPlanner

        road = self.build_sample()
        planner = UnconstrainedDpPlanner(
            road, config=PlannerConfig(v_step_ms=1.0, s_step_m=50.0, horizon_s=500.0)
        )
        solution = planner.plan(0.0, max_trip_time_s=400.0)
        assert solution.profile.total_distance_m == pytest.approx(3000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CorridorBuilder("x", 0.0)
        builder = CorridorBuilder("x", 1000.0)
        with pytest.raises(ConfigurationError):
            builder.build()  # limits not set
        builder.speed_limits(50.0)
        with pytest.raises(ConfigurationError):
            builder.speed_limits(60.0)  # twice
        with pytest.raises(ConfigurationError):
            builder.zone(900.0, 1100.0, 40.0)  # off the end
        builder.zone(100.0, 300.0, 40.0)
        with pytest.raises(ConfigurationError):
            builder.zone(200.0, 400.0, 30.0)  # overlap
        with pytest.raises(ConfigurationError):
            builder.stop_sign(at_m=1000.0)  # at the boundary
        with pytest.raises(ConfigurationError):
            builder.signal(at_m=-5.0, red_s=10, green_s=10)


class TestAsciiPlot:
    def test_single_series_renders(self):
        x = np.linspace(0, 100, 50)
        text = ascii_plot({"line": (x, np.sin(x / 10.0))}, width=40, height=8)
        assert "*" in text
        assert "* = line" in text

    def test_two_series_distinct_glyphs(self):
        x = np.linspace(0, 10, 20)
        text = ascii_plot({"a": (x, x), "b": (x, 10 - x)}, width=30, height=8)
        assert "* = a" in text and "o = b" in text

    def test_axis_bounds_in_output(self):
        x = np.asarray([0.0, 50.0])
        text = ascii_plot({"s": (x, np.asarray([2.0, 8.0]))}, width=30, height=6)
        assert "8.0" in text and "2.0" in text
        assert "50.0" in text

    def test_flat_series_handled(self):
        x = np.asarray([0.0, 1.0])
        text = ascii_plot({"flat": (x, np.asarray([5.0, 5.0]))}, width=20, height=5)
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({}, width=40, height=8)
        with pytest.raises(ValueError):
            ascii_plot({"s": ([0.0], [1.0])}, width=4, height=8)

    def test_speed_profile_helper_downsamples(self):
        positions = np.linspace(0, 4200, 5000)
        speeds = np.full_like(positions, 15.0)
        text = plot_speed_profiles({"ev": (positions, speeds)}, max_points=50)
        assert "position (m)" in text
        assert "km/h" in text
