"""Experiment harness smoke tests with fast configurations."""

import numpy as np
import pytest

from repro.experiments import fig3_energy_map, fig4_sae, fig5_queue
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestFig3:
    def test_surface_shape(self):
        result = fig3_energy_map.run(
            fig3_energy_map.Fig3Config(speed_steps=13, accel_steps=9)
        )
        assert result.rate_mah_s.shape == (9, 13)

    def test_regen_under_braking(self):
        result = fig3_energy_map.run(
            fig3_energy_map.Fig3Config(speed_steps=13, accel_steps=9)
        )
        braking = result.rate_mah_s[result.accels_ms2 < -0.5][:, result.speeds_kmh > 5]
        assert np.all(braking < 0)

    def test_consumption_grows_with_acceleration(self):
        result = fig3_energy_map.run(
            fig3_energy_map.Fig3Config(speed_steps=13, accel_steps=9)
        )
        column = result.rate_mah_s[:, 6]
        assert np.all(np.diff(column) > 0)

    def test_report_renders(self):
        result = fig3_energy_map.run(
            fig3_energy_map.Fig3Config(speed_steps=13, accel_steps=9)
        )
        text = fig3_energy_map.report(result)
        assert "Fig. 3" in text
        assert "mAh/s" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        config = fig4_sae.Fig4Config(
            total_days=56,
            test_days=7,
            hidden_sizes=(32, 16),
            pretrain_epochs=10,
            finetune_epochs=150,
        )
        return fig4_sae.run(config)

    def test_seven_day_rows(self, result):
        assert len(result.per_day) == 7
        labels = [row[0] for row in result.per_day]
        assert labels[0] == "Mon." and labels[-1] == "Sun."

    def test_sae_beats_last_value(self, result):
        assert result.overall["SAE"][0] < result.overall["last-value"][0]

    def test_mre_within_paper_band(self, result):
        worst = max(mre for _, mre, _ in result.per_day)
        assert worst < 0.15  # paper: < 10% on their data; allow slack here

    def test_report_renders(self, result):
        text = fig4_sae.report(result)
        assert "MRE" in text and "Mon." in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_queue.run(fig5_queue.Fig5Config(sim_duration_s=1200.0))

    def test_vm_slower_than_instant_during_ramp(self, result):
        ramp = (result.phase_s > 30.0) & (result.phase_s < 34.0)
        assert np.all(
            result.vm_leaving_rate[ramp] <= result.instant_leaving_rate[ramp] + 1e-9
        )

    def test_queue_peaks_at_red_end(self, result):
        peak_phase = result.phase_s[int(np.argmax(result.ql_proposed))]
        assert 28.0 <= peak_phase <= 32.0

    def test_proposed_fits_simulation_better(self, result):
        assert result.rmse_proposed <= result.rmse_baseline + 0.05

    def test_clear_times_ordered(self, result):
        assert result.clear_time_baseline_s < result.clear_time_proposed_s

    def test_report_renders(self, result):
        assert "t*" in fig5_queue.report(result)


class TestRunner:
    def test_registry_complete(self):
        figures = {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8"}
        assert figures <= set(EXPERIMENTS)
        extensions = set(EXPERIMENTS) - figures
        assert all(name.startswith("ext-") for name in extensions)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
