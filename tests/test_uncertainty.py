"""Chance-constrained planning: residual model, margins, bit-identity."""

import numpy as np
import pytest

from repro.core.planner import QueueAwareDpPlanner
from repro.core.uncertainty import (
    ChanceConstrainedPlanner,
    ResidualModel,
    window_start_sensitivity,
)
from repro.errors import ConfigurationError, PredictionError
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


class TestResidualModel:
    def test_median_debiased(self):
        model = ResidualModel([10.0, 11.0, 12.0, 13.0, 14.0])
        assert model.bias_s == pytest.approx(12.0)
        assert model.quantile(0.5) == pytest.approx(0.0)

    def test_margin_at_and_below_half_is_exactly_zero(self):
        rng = np.random.default_rng(3)
        model = ResidualModel(rng.normal(5.0, 3.0, 1001))
        # Exact zero, not approximately: this float is what keeps the
        # p <= 0.5 chance-constrained plan bit-identical to the point plan.
        assert model.margin_for(0.5) == 0.0
        assert model.margin_for(0.1) == 0.0

    def test_margin_monotone_in_level(self):
        rng = np.random.default_rng(4)
        model = ResidualModel(rng.normal(0.0, 2.0, 500))
        margins = [model.margin_for(p) for p in (0.6, 0.75, 0.9, 0.99)]
        assert margins == sorted(margins)
        assert margins[0] >= 0.0

    def test_margin_never_negative(self):
        # All-negative residuals (the forecast always errs safe) clamp to 0.
        model = ResidualModel([-5.0, -4.0, -3.0, -2.0, -1.0])
        assert model.margin_for(0.6) >= 0.0

    def test_with_timing_noise_widens_quantiles(self):
        base = ResidualModel([0.0])
        noisy = base.with_timing_noise(6.0)
        assert noisy.margin_for(0.9) == pytest.approx(4.8)
        assert noisy.margin_for(0.9) > base.margin_for(0.9)
        assert noisy.n_samples == 21

    def test_with_zero_noise_is_identity(self):
        base = ResidualModel([1.0, -1.0, 0.5])
        same = base.with_timing_noise(0.0)
        np.testing.assert_array_equal(same.samples_s, base.samples_s)

    def test_from_volume_errors_flips_sign(self):
        # Under-forecast volume (negative error) opens the true window
        # later -> positive timing residual -> positive high quantile.
        model = ResidualModel.from_volume_errors([0.0, -100.0], 0.01)
        assert model.quantile(1.0) > 0.0

    def test_from_predictor_requires_calibration(self):
        class Bare:
            residuals_vph_ = None

        with pytest.raises(PredictionError):
            ResidualModel.from_predictor(Bare(), 0.01)

    def test_from_predictor_uses_recorded_residuals(self):
        class Calibrated:
            residuals_vph_ = np.asarray([50.0, -50.0, 0.0])

        model = ResidualModel.from_predictor(Calibrated(), 0.02)
        assert model.n_samples == 3
        assert model.std_s > 0.0

    @pytest.mark.parametrize("samples", [[], [np.nan], [np.inf, 0.0]])
    def test_bad_samples_rejected(self, samples):
        with pytest.raises(ConfigurationError):
            ResidualModel(samples)

    @pytest.mark.parametrize("level", [0.0, 1.0, -0.1, 1.5])
    def test_bad_chance_level_rejected(self, level):
        model = ResidualModel([0.0, 1.0])
        with pytest.raises(ConfigurationError):
            model.margin_for(level)

    def test_noise_validation(self):
        model = ResidualModel([0.0])
        with pytest.raises(ConfigurationError):
            model.with_timing_noise(-1.0)
        with pytest.raises(ConfigurationError):
            model.with_timing_noise(1.0, levels=1)


class TestWindowStartSensitivity:
    def test_positive_at_operating_point(self, us25):
        planner = QueueAwareDpPlanner(us25, RATE)
        model = planner.queue_model(us25.signals[0].position_m)
        sens = window_start_sensitivity(model, RATE)
        # More arrivals -> the queue clears later -> the window starts later.
        assert sens > 0.0

    def test_zero_when_saturated(self, us25):
        planner = QueueAwareDpPlanner(us25, RATE)
        model = planner.queue_model(us25.signals[0].position_m)
        assert window_start_sensitivity(model, 10.0) == 0.0

    def test_validation(self, us25):
        planner = QueueAwareDpPlanner(us25, RATE)
        model = planner.queue_model(us25.signals[0].position_m)
        with pytest.raises(ConfigurationError):
            window_start_sensitivity(model, -1.0)
        with pytest.raises(ConfigurationError):
            window_start_sensitivity(model, RATE, delta_vps=0.0)


class TestChanceConstrainedPlanner:
    @pytest.fixture(scope="class")
    def residuals(self):
        return ResidualModel([0.0]).with_timing_noise(6.0)

    def test_half_level_bit_identical_to_point(self, us25, coarse_config, residuals):
        point = QueueAwareDpPlanner(us25, RATE, config=coarse_config)
        chance = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.5, config=coarse_config
        )
        a = point.plan(max_trip_time_s=320.0)
        b = chance.plan(max_trip_time_s=320.0)
        assert a.energy_j == b.energy_j
        assert a.trip_time_s == b.trip_time_s
        np.testing.assert_array_equal(a.profile.speeds_ms, b.profile.speeds_ms)
        np.testing.assert_array_equal(a.profile.positions_m, b.profile.positions_m)

    def test_zero_margin_constraints_bit_identical(self, us25, coarse_config, residuals):
        point = QueueAwareDpPlanner(us25, RATE, config=coarse_config)
        chance = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.5, config=coarse_config
        )
        for pc, cc in zip(point.signal_constraints(0.0), chance.signal_constraints(0.0)):
            np.testing.assert_array_equal(pc.windows._starts, cc.windows._starts)
            np.testing.assert_array_equal(pc.windows._ends, cc.windows._ends)

    def test_high_level_shrinks_windows(self, us25, coarse_config, residuals):
        point = QueueAwareDpPlanner(us25, RATE, config=coarse_config)
        chance = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.9, config=coarse_config
        )
        assert chance.chance_margin_s == pytest.approx(4.8)
        for pc, cc in zip(point.signal_constraints(0.0), chance.signal_constraints(0.0)):
            shift = cc.windows._starts - pc.windows._starts
            assert np.all(shift == pytest.approx(chance.chance_margin_s))

    def test_high_level_costs_no_less_energy(self, us25, coarse_config, residuals):
        point = QueueAwareDpPlanner(us25, RATE, config=coarse_config)
        chance = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.9, config=coarse_config
        )
        a = point.plan(max_trip_time_s=320.0)
        b = chance.plan(max_trip_time_s=320.0)
        # Tighter windows can only restrict the feasible set.
        assert b.energy_j >= a.energy_j

    def test_margin_arrivals_clear_true_window_shift(self, us25, coarse_config, residuals):
        chance = ChanceConstrainedPlanner(
            us25, RATE, residuals, chance_level=0.9, config=coarse_config
        )
        point = QueueAwareDpPlanner(us25, RATE, config=coarse_config)
        sol = chance.plan(max_trip_time_s=320.0)
        margin = chance.chance_margin_s
        for constraint in point.signal_constraints(0.0):
            arrival = sol.signal_arrivals[constraint.position_m]
            # The chance arrival still lands inside the *point* windows
            # even if the true window opens margin seconds late.
            assert bool(constraint.windows.contains([arrival - margin])[0])

    def test_bad_chance_level_rejected(self, us25, coarse_config, residuals):
        with pytest.raises(ConfigurationError):
            ChanceConstrainedPlanner(
                us25, RATE, residuals, chance_level=1.0, config=coarse_config
            )
