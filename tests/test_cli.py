"""The repro-plan command-line tool."""

import pytest

from repro.cli import build_parser, main


FAST_ARGS = ["--v-step", "1.0", "--s-step", "50.0"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.planner == "proposed"
        assert args.rate == 153.0
        assert args.cap is None

    def test_planner_choices(self):
        parser = build_parser()
        for choice in ("proposed", "baseline", "unconstrained"):
            assert parser.parse_args(["--planner", choice]).planner == choice
        with pytest.raises(SystemExit):
            parser.parse_args(["--planner", "magic"])


class TestMain:
    def test_proposed_plan_prints_summary(self, capsys):
        assert main(FAST_ARGS + ["--rate", "300", "--cap", "320"]) == 0
        out = capsys.readouterr().out
        assert "US-25" in out
        assert "signal @   1820 m" in out
        assert "[ok]" in out

    def test_baseline_planner(self, capsys):
        assert main(FAST_ARGS + ["--planner", "baseline", "--cap", "320"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_unconstrained_has_no_signal_rows(self, capsys):
        assert main(FAST_ARGS + ["--planner", "unconstrained", "--cap", "320"]) == 0
        out = capsys.readouterr().out
        assert "signal @" not in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "plan.csv"
        assert main(FAST_ARGS + ["--cap", "320", "--csv", str(target)]) == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header == "time_s,position_m,speed_ms"

    def test_infeasible_reports_error(self, capsys):
        code = main(FAST_ARGS + ["--cap", "60"])  # 4.2 km in 60 s: impossible
        assert code == 1
        assert "planning failed" in capsys.readouterr().err

    def test_default_cap_computed(self, capsys):
        assert main(FAST_ARGS + ["--rate", "200"]) == 0
        out = capsys.readouterr().out
        assert "trip budget" in out


class TestVehicleFlags:
    def test_list_vehicles_prints_catalog_and_packs(self, capsys):
        assert main(["--list-vehicles"]) == 0
        out = capsys.readouterr().out
        assert "vehicles:" in out
        assert "spark_ev" in out
        assert "scenario packs:" in out
        assert "cold-morning" in out

    def test_scenario_selects_pack_vehicle_and_environment(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320",
                            "--scenario", "headwind-commute"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "vehicle      : city_ev" in out
        assert "scenario     : headwind-commute" in out

    def test_explicit_vehicle_overrides_the_pack(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320",
                            "--scenario", "cold-morning", "--vehicle", "sedan_ev"]
        assert main(args) == 0
        assert "vehicle      : sedan_ev" in capsys.readouterr().out

    def test_vehicle_changes_the_planned_energy(self, capsys):
        base = FAST_ARGS + ["--rate", "300", "--cap", "320"]
        assert main(base) == 0
        nominal_out = capsys.readouterr().out
        assert main(base + ["--vehicle", "delivery_van"]) == 0
        van_out = capsys.readouterr().out

        def energy(text):
            for line in text.splitlines():
                if line.startswith("planned energy"):
                    return line
            raise AssertionError(f"no energy line in {text!r}")

        assert energy(van_out) != energy(nominal_out)

    def test_unknown_vehicle_exits_2(self, capsys):
        assert main(FAST_ARGS + ["--vehicle", "hoverboard"]) == 2
        err = capsys.readouterr().err
        assert "invalid vehicle/scenario" in err
        assert "hoverboard" in err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(FAST_ARGS + ["--scenario", "blizzard"]) == 2
        assert "blizzard" in capsys.readouterr().err


class TestChaosPath:
    def test_zero_drop_serves_primary_tier(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--drop-rate", "0.0"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "served by    : queue_dp tier" in out
        assert "cloud client" in out
        assert "breaker closed" in out

    def test_total_loss_degrades_to_local_tier(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--drop-rate", "1.0"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "served by    : baseline_dp tier" in out
        assert "drop(s)" in out

    def test_degraded_plan_verifies_in_sim(self, capsys):
        args = FAST_ARGS + [
            "--rate",
            "300",
            "--cap",
            "320",
            "--drop-rate",
            "1.0",
            "--verify",
        ]
        assert main(args) == 0
        assert "verified in sim" in capsys.readouterr().out


class TestServiceStatsJson:
    def test_composed_document_written(self, tmp_path, capsys):
        import json

        target = tmp_path / "svc.json"
        args = FAST_ARGS + [
            "--rate", "300", "--cap", "320",
            "--drop-rate", "0.0",
            "--service-stats-json", str(target),
        ]
        assert main(args) == 0
        assert "service stats written to" in capsys.readouterr().out
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro.cloud.stats/v1"
        for section in ("service", "plan_cache", "client", "artifact_store"):
            assert section in doc
        service = doc["service"]
        assert service["requests"] == (
            service["cache_hits"] + service["cache_misses"] + service["errors"]
        )

    def test_without_drop_rate_still_emits_store_section(self, tmp_path):
        import json

        target = tmp_path / "svc.json"
        args = FAST_ARGS + ["--cap", "320", "--service-stats-json", str(target)]
        assert main(args) == 0
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro.cloud.stats/v1"
        assert "artifact_store" in doc
        assert "service" not in doc  # no cloud path stood up

    def test_unwritable_path_exits_1(self, capsys):
        args = FAST_ARGS + [
            "--cap", "320",
            "--service-stats-json", "/nonexistent-dir/svc.json",
        ]
        assert main(args) == 1
        assert "could not write service stats" in capsys.readouterr().err


class TestGuardPath:
    def test_validate_prints_audit_line(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--validate"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "plan audit" in out
        assert "plan valid" in out

    def test_strict_implies_validate(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--strict"]
        assert main(args) == 0
        assert "plan audit" in capsys.readouterr().out

    def test_strict_rejects_malformed_road_file_with_exit_2(self, tmp_path, capsys):
        import json

        bad = {
            "format_version": 1,
            "name": "bad",
            "length_m": -4000.0,
            "zones": [],
            "stop_signs": [],
            "signals": [],
            "grade": {"positions_m": [0.0], "grades_rad": [0.0]},
        }
        path = tmp_path / "bad_road.json"
        path.write_text(json.dumps(bad))
        code = main(FAST_ARGS + ["--road", str(path), "--strict"])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid road file" in err
        assert err.count("\n") == 1  # one line, not a traceback

    def test_speed_limit_tier_skips_audit_gracefully(self, capsys):
        args = FAST_ARGS + [
            "--rate", "300", "--cap", "320",
            "--drop-rate", "1.0", "--chaos-seed", "7", "--validate",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "plan audit" in out


class TestUncertaintyPath:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.chance_level is None
        assert args.timing_error == 6.0
        assert args.receding_horizon is False
        assert args.lookahead is None

    def test_chance_level_prints_margin(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--chance-level", "0.9"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "chance level : 0.90" in out
        assert "window margin +4.8 s" in out  # q0.9 of uniform +/-6 s grid
        assert "[ok]" in out

    def test_chance_level_requires_proposed_planner(self, capsys):
        args = FAST_ARGS + ["--planner", "baseline", "--chance-level", "0.9"]
        assert main(args) == 2
        assert "proposed" in capsys.readouterr().err

    def test_bad_chance_level_exits_2(self, capsys):
        args = FAST_ARGS + ["--chance-level", "1.0"]
        assert main(args) == 2
        assert "invalid chance constraint" in capsys.readouterr().err

    def test_receding_horizon_plans(self, capsys):
        args = FAST_ARGS + ["--rate", "300", "--cap", "320", "--receding-horizon"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "mpc          : receding horizon, lookahead full horizon" in out
        assert "[ok]" in out

    def test_receding_horizon_with_chance_and_lookahead(self, capsys):
        args = FAST_ARGS + [
            "--rate", "300", "--cap", "320",
            "--chance-level", "0.9", "--receding-horizon", "--lookahead", "120",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "chance level : 0.90" in out
        assert "lookahead 120 s" in out

    def test_bad_lookahead_exits_2(self, capsys):
        args = FAST_ARGS + ["--receding-horizon", "--lookahead", "-5"]
        assert main(args) == 2
        assert "invalid receding horizon" in capsys.readouterr().err


class TestCorridorFlags:
    def test_list_corridors_prints_catalog_and_exits(self, capsys):
        assert main(["--list-corridors"]) == 0
        out = capsys.readouterr().out
        for corridor_id in ("us25", "elm-street", "airport-loop"):
            assert corridor_id in out
        assert "US-25 Greenville" in out

    def test_corridor_selects_the_named_road(self, capsys):
        assert main(FAST_ARGS + ["--corridor", "elm-street", "--cap", "400"]) == 0
        out = capsys.readouterr().out
        assert "Elm Street downtown (2.6 km)" in out
        assert "signal @    900 m" in out

    def test_unknown_corridor_exits_2_listing_known_ids(self, capsys):
        assert main(FAST_ARGS + ["--corridor", "route-66"]) == 2
        err = capsys.readouterr().err
        assert "route-66" in err
        assert "elm-street" in err

    def test_corridor_and_road_are_mutually_exclusive(self, tmp_path, capsys):
        road_file = tmp_path / "road.json"
        road_file.write_text("{}")
        code = main(
            FAST_ARGS + ["--corridor", "us25", "--road", str(road_file)]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
