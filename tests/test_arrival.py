"""Poisson arrival process and rate functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.arrival import PoissonArrivalProcess, hourly_rate_function
from repro.traffic.volume import VolumeSeries


@pytest.fixture
def series():
    return VolumeSeries(np.asarray([360.0, 720.0, 180.0]))


class TestRateFunction:
    def test_piecewise_constant(self, series):
        rate = hourly_rate_function(series)
        assert rate(0.0) == pytest.approx(0.1)
        assert rate(3599.0) == pytest.approx(0.1)
        assert rate(3600.0) == pytest.approx(0.2)
        assert rate(2 * 3600.0) == pytest.approx(0.05)

    def test_clamps_outside(self, series):
        rate = hourly_rate_function(series)
        assert rate(-100.0) == pytest.approx(0.1)
        assert rate(10 * 3600.0) == pytest.approx(0.05)


class TestPoissonArrivals:
    def test_deterministic_per_seed(self, series):
        a = PoissonArrivalProcess(series, seed=4).sample(0.0, 3600.0)
        b = PoissonArrivalProcess(series, seed=4).sample(0.0, 3600.0)
        np.testing.assert_array_equal(a, b)

    def test_arrivals_within_interval(self, series):
        arrivals = PoissonArrivalProcess(series, seed=1).sample(1800.0, 3600.0)
        assert np.all(arrivals >= 1800.0)
        assert np.all(arrivals < 5400.0)

    def test_sorted_within_hours(self, series):
        arrivals = PoissonArrivalProcess(series, seed=2).sample(0.0, 3 * 3600.0)
        assert np.all(np.diff(arrivals) >= 0.0)

    def test_rate_scales_counts(self):
        lo = VolumeSeries(np.full(10, 60.0))
        hi = VolumeSeries(np.full(10, 600.0))
        n_lo = PoissonArrivalProcess(lo, seed=3).sample(0.0, 10 * 3600.0).size
        n_hi = PoissonArrivalProcess(hi, seed=3).sample(0.0, 10 * 3600.0).size
        assert n_hi > 5 * n_lo

    def test_mean_count_close_to_expectation(self):
        series = VolumeSeries(np.full(2, 360.0))
        counts = [
            PoissonArrivalProcess(series, seed=s).sample(0.0, 3600.0).size
            for s in range(30)
        ]
        assert np.mean(counts) == pytest.approx(360.0, rel=0.1)

    def test_zero_rate_yields_no_arrivals(self):
        series = VolumeSeries(np.zeros(3))
        assert PoissonArrivalProcess(series, seed=0).sample(0.0, 3 * 3600.0).size == 0

    def test_validation(self, series):
        process = PoissonArrivalProcess(series)
        with pytest.raises(ConfigurationError):
            process.sample(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            process.sample(-1.0, 10.0)
