"""White-box tests of the DP solver's internal machinery."""

import numpy as np
import pytest

from repro.core.dp import DpSolver, _first_per_group
from repro.errors import ConfigurationError


class TestFirstPerGroup:
    def test_picks_first_under_order(self):
        groups = np.asarray([2, 1, 2, 1, 3])
        costs = np.asarray([5.0, 3.0, 1.0, 9.0, 7.0])
        order = np.lexsort((costs, groups))
        winners = _first_per_group(groups, order)
        # Winner of group 1 is index 1 (cost 3), group 2 is index 2
        # (cost 1), group 3 is index 4.
        assert set(winners) == {1, 2, 4}

    def test_single_group(self):
        groups = np.zeros(4, dtype=int)
        costs = np.asarray([4.0, 2.0, 8.0, 6.0])
        order = np.lexsort((costs, groups))
        winners = _first_per_group(groups, order)
        assert list(winners) == [1]

    def test_all_distinct(self):
        groups = np.asarray([5, 3, 9])
        order = np.argsort(groups)
        winners = _first_per_group(groups, order)
        assert set(winners) == {0, 1, 2}


class TestMinTimeToGo:
    def test_monotone_decreasing_along_route(self, plain_road):
        solver = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0)
        to_go = solver._min_time_to_go
        assert to_go[-1] == 0.0
        assert np.all(np.diff(to_go) <= 0)

    def test_admissible_lower_bound(self, plain_road):
        """No actual plan can beat the bound."""
        solver = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0)
        solution = solver.solve(minimize="time")
        assert solution.trip_time_s >= solver._min_time_to_go[0] - 1e-6

    def test_includes_stop_dwell(self, plain_road):
        fast = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0, stop_dwell_s=0.0)
        slow = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0, stop_dwell_s=10.0)
        assert slow._min_time_to_go[0] >= fast._min_time_to_go[0] + 10.0 - 1e-9


class TestSeedState:
    @pytest.fixture(scope="class")
    def solver(self, plain_road):
        return DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0)

    def test_none_seeds_source_at_rest(self, solver):
        i0, j0, t0 = solver._seed_state(None, 42.0)
        assert (i0, j0) == (0, 0)
        assert t0 == 42.0

    def test_snaps_to_next_grid_point(self, solver):
        i0, j0, t0 = solver._seed_state((120.0, 10.0), 0.0)
        assert solver.positions[i0] >= 120.0
        assert solver.positions[i0 - 1] < 120.0

    def test_exact_grid_point_no_hop(self, solver):
        pos = float(solver.positions[2])
        i0, j0, t0 = solver._seed_state((pos, 10.0), 5.0)
        assert i0 == 2
        assert t0 == pytest.approx(5.0)

    def test_velocity_snapped_to_allowed(self, solver):
        _, j0, _ = solver._seed_state((120.0, 9.7), 0.0)
        assert solver.v_grid[j0] == pytest.approx(10.0)

    def test_stop_point_seed_uses_launch_time(self, solver):
        # Just before the stop sign at 300 m with v=0: the hop must be
        # charged a launch-profile time, not a crawl.
        i0, j0, t0 = solver._seed_state((270.0, 0.0), 100.0)
        assert solver.positions[i0] == pytest.approx(300.0)
        assert j0 == 0
        hop_time = t0 - 100.0
        assert 3.0 < hop_time < 15.0

    def test_validation(self, solver):
        with pytest.raises(ConfigurationError):
            solver._seed_state((-1.0, 5.0), 0.0)
        with pytest.raises(ConfigurationError):
            solver._seed_state((1e9, 5.0), 0.0)
        with pytest.raises(ConfigurationError):
            solver._seed_state((10.0, -5.0), 0.0)


class TestLabelInvariants:
    def test_velocity_bounds_hook_restricts_grid(self, plain_road):
        solver = DpSolver(
            plain_road,
            v_step_ms=1.0,
            s_step_m=50.0,
            velocity_bounds=lambda s: (0.0, 9.0),
        )
        for i, position in enumerate(solver.positions):
            allowed = solver.v_grid[solver._allowed[i]]
            assert allowed.max() <= 9.0 + 1e-9
        solution = solver.solve()
        assert solution.profile.speeds_ms.max() <= 9.0 + 1e-9

    def test_overconstrained_bounds_raise_at_construction(self, plain_road):
        with pytest.raises(ConfigurationError):
            DpSolver(
                plain_road,
                v_step_ms=1.0,
                s_step_m=50.0,
                velocity_bounds=lambda s: (100.0, 200.0),
            )
