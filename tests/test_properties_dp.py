"""Property-based tests of the DP solver on randomized roads (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.constraints import check_profile
from repro.core.cost import WindowSet
from repro.core.dp import DpSolver, TimeWindowConstraint
from repro.errors import InfeasibleProblemError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.signal.light import TrafficLight
from repro.signal.queue import QueueWindow


@st.composite
def random_roads(draw):
    length = draw(st.floats(min_value=400.0, max_value=1200.0))
    v_max = draw(st.floats(min_value=10.0, max_value=20.0))
    v_min = draw(st.floats(min_value=4.0, max_value=v_max * 0.6))
    has_sign = draw(st.booleans())
    signs = []
    if has_sign:
        signs.append(StopSign(draw(st.floats(min_value=100.0, max_value=length - 100.0))))
    return RoadSegment(
        name="random",
        length_m=length,
        zones=[SpeedLimitZone(0.0, length, v_max_ms=v_max, v_min_ms=v_min)],
        stop_signs=signs,
    )


class TestDpOnRandomRoads:
    @given(road=random_roads())
    @settings(max_examples=25, deadline=None)
    def test_plan_always_satisfies_eq7(self, road):
        solver = DpSolver(road, v_step_ms=1.0, s_step_m=50.0, horizon_s=400.0)
        solution = solver.solve()
        report = check_profile(solution.profile, road)
        assert report.ok, str(report)

    @given(road=random_roads(), cap=st.floats(min_value=60.0, max_value=350.0))
    @settings(max_examples=25, deadline=None)
    def test_trip_cap_respected_or_infeasible(self, road, cap):
        solver = DpSolver(road, v_step_ms=1.0, s_step_m=50.0, horizon_s=400.0)
        try:
            solution = solver.solve(max_trip_time_s=cap)
        except InfeasibleProblemError:
            return
        assert solution.trip_time_s <= cap + 1e-6

    @given(road=random_roads())
    @settings(max_examples=20, deadline=None)
    def test_more_time_never_costs_more_energy(self, road):
        solver = DpSolver(road, v_step_ms=1.0, s_step_m=50.0, horizon_s=400.0)
        try:
            tight = solver.solve(max_trip_time_s=140.0)
        except InfeasibleProblemError:
            return
        loose = solver.solve(max_trip_time_s=400.0)
        assert loose.energy_j <= tight.energy_j + 1e-6

    @given(
        road=random_roads(),
        red=st.floats(min_value=10.0, max_value=40.0),
        green=st.floats(min_value=15.0, max_value=40.0),
        offset=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_green_window_arrivals_are_green(self, road, red, green, offset):
        light = TrafficLight(red_s=red, green_s=green, offset_s=offset)
        position = road.length_m / 2.0
        windows = WindowSet(
            [QueueWindow(a, b) for a, b in light.green_windows(400.0, 0.0)]
        )
        constraint = TimeWindowConstraint(position_m=position, windows=windows)
        solver = DpSolver(road, v_step_ms=1.0, s_step_m=50.0, horizon_s=400.0)
        try:
            solution = solver.solve(constraints=[constraint])
        except InfeasibleProblemError:
            return
        arrival = solution.profile.arrival_time_at(
            float(solver.positions[np.argmin(np.abs(solver.positions - position))])
        )
        assert light.is_green(arrival)
