"""Cache layer: LRU+TTL semantics, exact counters, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.cloud.plan_cache import CacheStats, PlanCache
from repro.errors import ConfigurationError


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(capacity=2, name="t.lru")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a's recency
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency_too(self):
        cache = PlanCache(capacity=2, name="t.lru2")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        assert cache.stats().evictions == 0
        cache.put("c", 3)  # now b is the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_capacity_bound_holds(self):
        cache = PlanCache(capacity=3, name="t.bound")
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        stats = cache.stats()
        assert stats.size == 3
        assert stats.evictions == 7
        assert cache.keys() == [7, 8, 9]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(capacity=0)
        with pytest.raises(ConfigurationError):
            PlanCache(ttl_s=0.0)
        with pytest.raises(ConfigurationError):
            PlanCache(ttl_s=-1.0)


class TestTtl:
    def test_expired_entry_counts_expiration_and_miss(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=10.0, name="t.ttl", clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(2.0)  # 11 s after insertion
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.size == 0

    def test_put_resets_the_ttl(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=10.0, name="t.ttl2", clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)  # fresh insertion time
        clock.advance(8.0)
        assert cache.get("a") == 2

    def test_contains_respects_ttl_without_counting(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=5.0, name="t.ttl3", clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(6.0)
        assert "a" not in cache
        # __contains__ is a peek: no lookup counters moved.
        assert cache.stats().lookups == 0

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=None, name="t.nottl", clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1

    def test_contains_drops_the_expired_entry_and_counts_it(self):
        """Regression: ``in`` used to leave the stale entry in the dict.

        The entry then occupied a capacity slot uncounted until some later
        ``get`` or eviction tripped over it, so ``size`` disagreed with
        what any lookup would observe.
        """
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=5.0, name="t.cexp", clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        assert "a" not in cache
        stats = cache.stats()
        assert stats.size == 0  # dropped, not just hidden
        assert stats.expirations == 1
        assert stats.lookups == 0  # still no hit/miss: membership != lookup

    def test_contains_expiry_keeps_the_eviction_books_honest(self):
        """A stale entry seen by ``in`` must not later count as an eviction."""
        clock = FakeClock()
        cache = PlanCache(capacity=2, ttl_s=5.0, name="t.cexp2", clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        cache.put("b", 2)
        assert "a" not in cache  # drops the stale slot now
        cache.put("c", 3)  # fits: b + c, nothing to evict
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.evictions == 0
        assert cache.keys() == ["b", "c"]


class TestPeek:
    def test_peek_is_side_effect_free(self):
        cache = PlanCache(capacity=2, name="t.peek")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        stats = cache.stats()
        assert stats.lookups == 0  # neither peek counted
        # Recency was not refreshed: "a" is still the LRU entry.
        cache.put("c", 3)
        assert cache.keys() == ["b", "c"]

    def test_peek_leaves_expired_entries_for_get_to_account(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_s=5.0, name="t.peek2", clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        assert cache.peek("a") is None  # reads as absent...
        assert cache.stats().expirations == 0  # ...but nothing was dropped
        assert cache.get("a") is None  # the replayed lookup does the books
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1


class TestCounters:
    def test_stats_snapshot_is_immutable_and_complete(self):
        cache = PlanCache(capacity=2, ttl_s=30.0, name="t.stats")
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.note_revalidation_miss()
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert (stats.name, stats.hits, stats.misses) == ("t.stats", 1, 1)
        assert stats.revalidation_misses == 1
        assert stats.capacity == 2
        assert stats.ttl_s == 30.0
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        with pytest.raises(AttributeError):
            stats.hits = 99  # frozen
        # Snapshot semantics: later traffic never mutates it.
        cache.get("a")
        assert stats.hits == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = PlanCache(capacity=4, name="t.clear")
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.size == 0

    def test_obs_counters_mirrored(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            cache = PlanCache(capacity=1, ttl_s=None, name="t.obs")
            cache.put("a", 1)
            cache.get("a")
            cache.get("b")
            cache.put("b", 2)  # evicts a
            cache.note_revalidation_miss()
            counters = registry.snapshot()["counters"]
            assert counters["t.obs.hits"] == 1
            assert counters["t.obs.misses"] == 1
            assert counters["t.obs.evictions"] == 1
            assert counters["t.obs.revalidation_misses"] == 1

    def test_summary_mentions_the_interesting_counts(self):
        clock = FakeClock()
        cache = PlanCache(capacity=2, ttl_s=1.0, name="t.sum", clock=clock)
        cache.put("a", 1)
        clock.advance(2.0)
        cache.get("a")
        cache.note_revalidation_miss()
        text = cache.stats().summary()
        assert "expired" in text
        assert "revalidation" in text


class TestThreadSafety:
    def test_concurrent_mixed_traffic_keeps_exact_books(self):
        cache = PlanCache(capacity=8, name="t.threads")
        n_threads, ops = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for i in range(ops):
                cache.put((tid, i % 16), i)
                cache.get((tid, (i + 1) % 16))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        # Every lookup is accounted exactly once, and the bound held.
        assert stats.lookups == n_threads * ops
        assert stats.size <= 8
        assert len(cache) == stats.size
