"""Failure injection: oversaturation, blockage and unreachable plans."""

import numpy as np
import pytest

from repro.core.cost import WindowSet
from repro.core.dp import DpSolver, TimeWindowConstraint
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import ConfigurationError, InfeasibleProblemError, SimulationError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone
from repro.signal.light import TrafficLight
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel
from repro.sim.simulator import CorridorSimulator
from repro.units import vehicles_per_hour_to_per_second


def oversaturated_road():
    """A signal whose green cannot absorb heavy arrivals."""
    return RoadSegment(
        name="oversaturated",
        length_m=1000.0,
        zones=[SpeedLimitZone(0.0, 1000.0, v_max_ms=15.0, v_min_ms=1.0)],
        signals=[
            SignalSite(
                position_m=500.0,
                light=TrafficLight(red_s=55.0, green_s=5.0),
                queue_spacing_m=8.0,
            )
        ],
    )


class TestOversaturation:
    def test_queue_model_reports_no_window(self):
        road = oversaturated_road()
        site = road.signals[0]
        vm = VehicleMovementModel(
            light=site.light, v_min_ms=1.0, a_max_ms2=0.5, spacing_m=8.0
        )
        model = QueueLengthModel(vm)
        heavy = vehicles_per_hour_to_per_second(1500.0)
        assert model.clear_time(heavy) is None
        assert model.empty_windows(0.0, 300.0, heavy) == []

    def test_planner_raises_cleanly_in_hard_mode(self):
        road = oversaturated_road()
        heavy = vehicles_per_hour_to_per_second(1500.0)
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=heavy,
            config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0, horizon_s=300.0),
        )
        with pytest.raises(InfeasibleProblemError):
            planner.plan(0.0)

    def test_penalty_mode_still_produces_a_plan(self):
        road = oversaturated_road()
        heavy = vehicles_per_hour_to_per_second(1500.0)
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=heavy,
            config=PlannerConfig(
                v_step_ms=1.0,
                s_step_m=25.0,
                horizon_s=300.0,
                constraint_mode="penalty",
            ),
        )
        solution = planner.plan(0.0, max_trip_time_s=200.0)
        assert not solution.all_windows_hit
        assert solution.energy_j > 1e8  # paid the penalty but delivered


class TestSimulatorStress:
    def test_entry_backlog_under_saturation_arrivals(self):
        road = oversaturated_road()
        arrivals = np.arange(0.0, 120.0, 1.0)  # 3600 vph: far beyond capacity
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=1)
        result = sim.run(240.0)
        # Not everyone gets in, nobody collides, accounting stays exact.
        assert result.vehicles_entered < len(arrivals)
        assert result.vehicles_entered == result.vehicles_exited + len(sim._vehicles)

    def test_growing_queue_under_oversaturation(self):
        road = oversaturated_road()
        arrivals = np.arange(0.0, 600.0, 4.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=2)
        result = sim.run(600.0)
        times, counts = result.queue_counts[500.0]
        first_half = counts[times < 300.0].mean()
        second_half = counts[times >= 300.0].mean()
        assert second_half > first_half

    def test_ev_times_out_when_track_is_jammed(self):
        road = oversaturated_road()
        arrivals = np.arange(0.0, 300.0, 2.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=3)
        sim.schedule_ev(depart_s=150.0, target_speed_at=lambda s: 15.0)
        with pytest.raises(SimulationError):
            sim.run_until_ev_done(hard_limit_s=300.0)


class TestUnreachableWindows:
    def test_empty_window_set_is_infeasible(self, plain_road):
        solver = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0, horizon_s=300.0)
        constraint = TimeWindowConstraint(position_m=400.0, windows=WindowSet([]))
        with pytest.raises(InfeasibleProblemError):
            solver.solve(constraints=[constraint])

    def test_conflicting_windows_between_signals(self, plain_road):
        from repro.signal.queue import QueueWindow

        solver = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0, horizon_s=300.0)
        # Window at 600 m opens long after the window at 200 m closes,
        # farther apart than any admissible dawdling can bridge.
        c1 = TimeWindowConstraint(
            position_m=200.0, windows=WindowSet([QueueWindow(20.0, 25.0)])
        )
        c2 = TimeWindowConstraint(
            position_m=600.0, windows=WindowSet([QueueWindow(280.0, 285.0)])
        )
        with pytest.raises(InfeasibleProblemError):
            solver.solve(constraints=[c1, c2], max_trip_time_s=290.0)

    def test_error_message_names_the_blocking_position(self, plain_road):
        from repro.signal.queue import QueueWindow

        solver = DpSolver(plain_road, v_step_ms=1.0, s_step_m=50.0, horizon_s=300.0)
        constraint = TimeWindowConstraint(
            position_m=400.0, windows=WindowSet([QueueWindow(1.0, 2.0)])
        )
        with pytest.raises(InfeasibleProblemError) as exc:
            solver.solve(constraints=[constraint])
        assert "m" in str(exc.value)
