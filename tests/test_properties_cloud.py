"""Property-based tests of cloud-service caching and profile shifting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.service import CloudPlannerService
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.core.profile import VelocityProfile
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second


@st.composite
def simple_profiles(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    gaps = draw(st.lists(st.floats(50.0, 200.0), min_size=n - 1, max_size=n - 1))
    inner = draw(st.lists(st.floats(1.0, 20.0), min_size=n - 2, max_size=n - 2))
    positions = np.concatenate([[0.0], np.cumsum(gaps)])
    speeds = np.concatenate([[0.0], inner, [0.0]])
    start = draw(st.floats(0.0, 500.0))
    return VelocityProfile(positions, speeds, start_time_s=start)


class TestShiftProperties:
    @given(profile=simple_profiles(), new_start=st.floats(0.0, 1000.0))
    @settings(max_examples=150, deadline=None)
    def test_shift_preserves_shape_and_duration(self, profile, new_start):
        shifted = CloudPlannerService._shift_profile(profile, new_start)
        np.testing.assert_array_equal(shifted.positions_m, profile.positions_m)
        np.testing.assert_array_equal(shifted.speeds_ms, profile.speeds_ms)
        assert shifted.total_time_s == pytest.approx(profile.total_time_s)

    @given(profile=simple_profiles(), new_start=st.floats(0.0, 1000.0))
    @settings(max_examples=150, deadline=None)
    def test_shift_translates_every_arrival_uniformly(self, profile, new_start):
        shifted = CloudPlannerService._shift_profile(profile, new_start)
        delta = new_start - profile.start_time_s
        np.testing.assert_allclose(
            shifted.arrival_times_s,
            profile.arrival_times_s + delta,
            rtol=1e-12,
            atol=1e-9,
        )


class TestCacheKeyProperties:
    @pytest.fixture(scope="class")
    def service(self):
        road = us25_greenville_segment()
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=vehicles_per_hour_to_per_second(300.0),
            config=PlannerConfig(v_step_ms=1.0, s_step_m=50.0, t_bin_s=2.0),
        )
        return CloudPlannerService(planner, phase_quantum_s=1.0)

    @given(
        depart=st.floats(0.0, 3000.0),
        periods=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_same_phase_same_key(self, service, depart, periods):
        period = service._period_s
        quantum = service.phase_quantum_s
        phase1 = depart % period
        phase2 = (depart + periods * period) % period
        # Shifting by whole periods preserves the phase up to float
        # rounding (circular distance, since the phase wraps at 0).
        drift = abs(phase1 - phase2)
        assert min(drift, period - drift) < 1e-6
        # Within float epsilon of a quantum boundary, that rounding can
        # legitimately flip the bin (worst case: one extra cache miss).
        # Everywhere else the key must be identical.
        frac = (phase1 / quantum) % 1.0
        near_boundary = min(frac, 1.0 - frac) * quantum < 1e-6
        if not near_boundary:
            assert int(phase1 / quantum) == int(phase2 / quantum)
