"""Synthetic hourly traffic-volume generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.volume import VolumeGenerator, VolumeSeries


@pytest.fixture(scope="module")
def week():
    return VolumeGenerator(seed=3, incident_rate_per_day=0.0).generate(n_days=7)


class TestVolumeSeries:
    def test_length_and_hours(self, week):
        assert len(week) == 7 * 24
        assert week.hours[0] == 0
        assert week.hours[-1] == 167

    def test_hour_of_day_wraps(self, week):
        hod = week.hour_of_day()
        assert hod[0] == 0
        assert hod[23] == 23
        assert hod[24] == 0

    def test_day_of_week(self, week):
        dow = week.day_of_week()
        assert dow[0] == 0  # Monday
        assert dow[6 * 24] == 6  # Sunday

    def test_split(self, week):
        left, right = week.split(100)
        assert len(left) == 100
        assert len(right) == 68
        assert right.start_hour == 100
        np.testing.assert_array_equal(
            np.concatenate([left.volumes_vph, right.volumes_vph]), week.volumes_vph
        )

    def test_split_out_of_range(self, week):
        with pytest.raises(ValueError):
            week.split(0)
        with pytest.raises(ValueError):
            week.split(9999)

    def test_day_slicing(self, week):
        day3 = week.day(3)
        assert day3.shape == (24,)
        np.testing.assert_array_equal(day3, week.volumes_vph[72:96])

    def test_day_slicing_requires_alignment(self):
        series = VolumeSeries(np.ones(48), start_hour=5)
        with pytest.raises(ValueError):
            series.day(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VolumeSeries(np.asarray([]))
        with pytest.raises(ConfigurationError):
            VolumeSeries(np.asarray([1.0, -2.0]))


class TestVolumeGenerator:
    def test_deterministic_under_seed(self):
        a = VolumeGenerator(seed=11).generate(14)
        b = VolumeGenerator(seed=11).generate(14)
        np.testing.assert_array_equal(a.volumes_vph, b.volumes_vph)

    def test_seeds_differ(self):
        a = VolumeGenerator(seed=1).generate(7)
        b = VolumeGenerator(seed=2).generate(7)
        assert not np.array_equal(a.volumes_vph, b.volumes_vph)

    def test_non_negative(self):
        series = VolumeGenerator(seed=5).generate(30)
        assert np.all(series.volumes_vph >= 0)

    def test_weekday_double_peak(self, week):
        monday = week.day(0)
        morning = monday[6:10].max()
        midday = monday[11:14].mean()
        evening = monday[15:19].max()
        night = monday[0:5].mean()
        assert morning > midday > night
        assert evening > midday

    def test_weekend_lower_than_weekday(self, week):
        weekday_total = sum(week.day(d).sum() for d in range(5)) / 5
        weekend_total = sum(week.day(d).sum() for d in (5, 6)) / 2
        assert weekend_total < weekday_total

    def test_weekend_single_midday_peak(self, week):
        saturday = week.day(5)
        peak_hour = int(np.argmax(saturday))
        assert 10 <= peak_hour <= 16

    def test_incidents_perturb_series(self):
        calm = VolumeGenerator(seed=9, incident_rate_per_day=0.0).generate(30)
        eventful = VolumeGenerator(seed=9, incident_rate_per_day=5.0).generate(30)
        assert not np.array_equal(calm.volumes_vph, eventful.volumes_vph)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VolumeGenerator(base_vph=-1.0)
        with pytest.raises(ConfigurationError):
            VolumeGenerator(noise_std=-0.1)
        with pytest.raises(ValueError):
            VolumeGenerator().generate(0)
