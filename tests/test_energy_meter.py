"""Trip energy integration over sampled traces."""

import numpy as np
import pytest

from repro.core.cost import SegmentEnergyTable
from repro.units import SECONDS_PER_HOUR
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.energy_meter import EnergyMeter, TripEnergy
from repro.vehicle.environment import EnvironmentConditions


@pytest.fixture(scope="module")
def meter():
    return EnergyMeter()


class TestMeasure:
    def test_constant_speed_matches_analytic(self, meter):
        times = np.arange(0.0, 101.0, 1.0)
        speeds = np.full_like(times, 12.0)
        trip = meter.measure(times, speeds)
        model = LongitudinalModel()
        expected_a = model.consumption_rate_a(12.0, 0.0)
        expected_mah = expected_a * 100.0 / 3600.0 * 1000.0
        assert trip.drawn_mah == pytest.approx(expected_mah, rel=1e-6)
        assert trip.regenerated_mah == pytest.approx(0.0)
        assert trip.distance_m == pytest.approx(1200.0)
        assert trip.duration_s == pytest.approx(100.0)

    def test_braking_splits_into_regen(self, meter):
        times = np.asarray([0.0, 10.0, 20.0])
        speeds = np.asarray([0.0, 15.0, 0.0])
        trip = meter.measure(times, speeds)
        assert trip.drawn_mah > 0
        assert trip.regenerated_mah > 0
        assert trip.net_mah < trip.drawn_mah

    def test_grade_callable_used(self, meter):
        times = np.arange(0.0, 51.0, 1.0)
        speeds = np.full_like(times, 10.0)
        flat = meter.measure(times, speeds)
        uphill = meter.measure(times, speeds, grade_at=lambda s: np.arctan(0.03))
        assert uphill.net_mah > flat.net_mah

    def test_rejects_mismatched_lengths(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0], [1.0])

    def test_rejects_single_sample(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0], [1.0])

    def test_rejects_non_increasing_times(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0, 1.0], [1.0, 1.0, 1.0])

    def test_rejects_negative_speed(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0], [1.0, -0.1])


class TestTripEnergy:
    def test_net_and_specific(self):
        trip = TripEnergy(
            drawn_mah=1000.0, regenerated_mah=200.0, duration_s=100.0, distance_m=2000.0
        )
        assert trip.net_mah == pytest.approx(800.0)
        assert trip.net_wh == pytest.approx(0.8 * 399.0)
        assert trip.wh_per_km == pytest.approx(0.8 * 399.0 / 2.0)

    def test_zero_distance_specific_is_nan(self):
        trip = TripEnergy(drawn_mah=1.0, regenerated_mah=0.0, duration_s=1.0, distance_m=0.0)
        assert np.isnan(trip.wh_per_km)


class TestSegmentTableCrossCheck:
    """The measurement layer and the DP cost layer price the same physics.

    Both sit on :class:`LongitudinalModel` but discretize differently:
    the meter integrates a time-sampled trace at midpoint speed, the
    table prices constant-acceleration distance segments.  For a single
    constant-acceleration segment the two grids coincide — the trace
    ``(v0 at t=0, v1 at t=ds/v_avg)`` has midpoint speed ``v_avg``,
    acceleration ``(v1-v0)/dt == (v1^2-v0^2)/(2 ds)`` and covers exactly
    ``ds`` — so the metered net charge must equal the table entry,
    including under regen, grade, and non-nominal environments.
    """

    GRID = np.asarray([2.0, 6.0, 10.0, 14.0, 18.0])
    DS = 150.0

    @pytest.mark.parametrize("grade_rad", [0.0, 0.03, -0.02])
    @pytest.mark.parametrize(
        "environment",
        [
            None,
            EnvironmentConditions(ambient_temp_c=-10.0, headwind_ms=5.0),
            EnvironmentConditions(payload_kg=400.0, grade_offset_rad=0.01),
        ],
        ids=["nominal", "cold-windy", "laden-hilly"],
    )
    def test_meter_matches_table_per_segment(self, grade_rad, environment):
        model = LongitudinalModel(environment=environment)
        meter = EnergyMeter(environment=environment)
        table = SegmentEnergyTable(
            model,
            self.GRID,
            distance_m=self.DS,
            grade_rad=grade_rad,
            a_min=model.params.min_accel_ms2,
            a_max=model.params.max_accel_ms2,
        )
        voltage = model.params.battery.voltage_v
        checked = 0
        saw_regen = False
        for j, v0 in enumerate(self.GRID):
            for j2, v1 in enumerate(self.GRID):
                if not table.feasible[j, j2]:
                    continue
                dt = table.travel_s[j, j2]
                trip = meter.measure(
                    [0.0, dt], [v0, v1], grade_at=lambda s: grade_rad
                )
                table_mah = table.energy_j[j, j2] / voltage / SECONDS_PER_HOUR * 1000.0
                assert trip.net_mah == pytest.approx(table_mah, rel=1e-12, abs=1e-12)
                assert trip.distance_m == pytest.approx(self.DS, rel=1e-12)
                saw_regen = saw_regen or table_mah < 0.0
                checked += 1
        assert checked > 10
        assert saw_regen  # the sweep must exercise the regen branch

    def test_regen_branch_splits_exactly(self):
        """One braking segment: the meter's regen column carries the
        whole (negative) table entry and the drawn column stays zero."""
        model = LongitudinalModel()
        meter = EnergyMeter()
        table = SegmentEnergyTable(
            model, self.GRID, self.DS, 0.0,
            model.params.min_accel_ms2, model.params.max_accel_ms2,
        )
        j, j2 = 4, 0  # 18 -> 2 m/s over 150 m: hard braking, net regen
        assert table.feasible[j, j2]
        assert table.energy_j[j, j2] < 0.0
        trip = meter.measure([0.0, table.travel_s[j, j2]], [self.GRID[j], self.GRID[j2]])
        assert trip.drawn_mah == 0.0
        assert trip.regenerated_mah > 0.0
