"""Trip energy integration over sampled traces."""

import numpy as np
import pytest

from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.energy_meter import EnergyMeter, TripEnergy


@pytest.fixture(scope="module")
def meter():
    return EnergyMeter()


class TestMeasure:
    def test_constant_speed_matches_analytic(self, meter):
        times = np.arange(0.0, 101.0, 1.0)
        speeds = np.full_like(times, 12.0)
        trip = meter.measure(times, speeds)
        model = LongitudinalModel()
        expected_a = model.consumption_rate_a(12.0, 0.0)
        expected_mah = expected_a * 100.0 / 3600.0 * 1000.0
        assert trip.drawn_mah == pytest.approx(expected_mah, rel=1e-6)
        assert trip.regenerated_mah == pytest.approx(0.0)
        assert trip.distance_m == pytest.approx(1200.0)
        assert trip.duration_s == pytest.approx(100.0)

    def test_braking_splits_into_regen(self, meter):
        times = np.asarray([0.0, 10.0, 20.0])
        speeds = np.asarray([0.0, 15.0, 0.0])
        trip = meter.measure(times, speeds)
        assert trip.drawn_mah > 0
        assert trip.regenerated_mah > 0
        assert trip.net_mah < trip.drawn_mah

    def test_grade_callable_used(self, meter):
        times = np.arange(0.0, 51.0, 1.0)
        speeds = np.full_like(times, 10.0)
        flat = meter.measure(times, speeds)
        uphill = meter.measure(times, speeds, grade_at=lambda s: np.arctan(0.03))
        assert uphill.net_mah > flat.net_mah

    def test_rejects_mismatched_lengths(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0], [1.0])

    def test_rejects_single_sample(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0], [1.0])

    def test_rejects_non_increasing_times(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0, 1.0], [1.0, 1.0, 1.0])

    def test_rejects_negative_speed(self, meter):
        with pytest.raises(ValueError):
            meter.measure([0.0, 1.0], [1.0, -0.1])


class TestTripEnergy:
    def test_net_and_specific(self):
        trip = TripEnergy(
            drawn_mah=1000.0, regenerated_mah=200.0, duration_s=100.0, distance_m=2000.0
        )
        assert trip.net_mah == pytest.approx(800.0)
        assert trip.net_wh == pytest.approx(0.8 * 399.0)
        assert trip.wh_per_km == pytest.approx(0.8 * 399.0 / 2.0)

    def test_zero_distance_specific_is_nan(self):
        trip = TripEnergy(drawn_mah=1.0, regenerated_mah=0.0, duration_s=1.0, distance_m=0.0)
        assert np.isnan(trip.wh_per_km)
