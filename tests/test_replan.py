"""Mid-route replanning and the closed-loop driver."""

import numpy as np
import pytest

from repro.core.planner import PlannerConfig, QueueAwareDpPlanner, UnconstrainedDpPlanner
from repro.errors import ConfigurationError
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def planner(us25, coarse_config):
    return QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)


class TestSolveFromState:
    def test_suffix_profile_covers_remaining_route(self, planner, us25):
        solution = planner.replan(position_m=2000.0, speed_ms=15.0, time_s=130.0)
        profile = solution.profile
        assert profile.positions_m[0] >= 2000.0
        assert profile.positions_m[-1] == us25.length_m
        assert profile.arrival_times_s[0] >= 130.0

    def test_seed_speed_near_current(self, planner):
        solution = planner.replan(position_m=2000.0, speed_ms=15.0, time_s=130.0)
        assert solution.profile.speeds_ms[0] == pytest.approx(15.0, abs=1.0)

    def test_only_signals_ahead_constrained(self, planner):
        solution = planner.replan(position_m=2000.0, speed_ms=15.0, time_s=130.0)
        assert set(solution.signal_arrivals) == {3460.0}
        assert solution.all_windows_hit

    def test_replan_before_first_signal_keeps_both(self, planner):
        solution = planner.replan(position_m=600.0, speed_ms=12.0, time_s=40.0)
        assert set(solution.signal_arrivals) == {1820.0, 3460.0}

    def test_destination_still_a_stop(self, planner):
        solution = planner.replan(position_m=3000.0, speed_ms=14.0, time_s=200.0)
        assert solution.profile.speeds_ms[-1] == 0.0

    def test_remaining_stop_signs_respected(self, planner, us25):
        solution = planner.replan(position_m=100.0, speed_ms=10.0, time_s=10.0)
        idx = int(np.argmin(np.abs(solution.profile.positions_m - 490.0)))
        assert solution.profile.speeds_ms[idx] == 0.0

    def test_off_route_position_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            planner.replan(position_m=5000.0, speed_ms=10.0, time_s=0.0)
        with pytest.raises(ConfigurationError):
            planner.replan(position_m=100.0, speed_ms=-1.0, time_s=0.0)

    def test_full_solve_unchanged(self, planner):
        whole = planner.plan(0.0, max_trip_time_s=320.0)
        assert whole.profile.positions_m[0] == 0.0
        assert whole.profile.speeds_ms[0] == 0.0


class TestSeedState:
    """Edge cases of snapping a physical replanning state onto the grid."""

    def test_position_exactly_on_grid_point_keeps_time(self, planner):
        # 2000 m is on the 50 m grid: no hop, so the suffix must start at
        # exactly the requested position and time.
        solution = planner.replan(position_m=2000.0, speed_ms=15.0, time_s=130.0)
        assert solution.profile.positions_m[0] == 2000.0
        assert solution.profile.arrival_times_s[0] == pytest.approx(130.0, abs=1e-12)

    def test_off_grid_position_charges_the_hop(self, planner):
        on_grid = planner.replan(position_m=2000.0, speed_ms=15.0, time_s=130.0)
        off_grid = planner.replan(position_m=1990.0, speed_ms=15.0, time_s=130.0)
        assert off_grid.profile.positions_m[0] == 2000.0
        hop = off_grid.profile.arrival_times_s[0] - 130.0
        assert hop == pytest.approx(10.0 / 15.0, rel=0.2)
        assert on_grid.profile.arrival_times_s[0] < off_grid.profile.arrival_times_s[0]

    def test_speed_above_local_limit_clamps_to_grid(self, planner, us25):
        limit = us25.v_max_at(2000.0)
        solution = planner.replan(position_m=2000.0, speed_ms=99.0, time_s=130.0)
        seed_speed = solution.profile.speeds_ms[0]
        assert seed_speed <= limit + 1e-9
        # Clamp lands on the *largest* admissible grid speed, not some
        # arbitrary lower one.
        assert seed_speed > limit - planner.config.v_step_ms - 1e-9

    def test_position_in_final_segment_yields_valid_suffix(self, planner, us25):
        # Past the last interior grid point the forward snap would land on
        # the destination with nothing left to expand; the seed snaps back
        # to the final segment's start instead of crashing.
        solution = planner.replan(
            position_m=us25.length_m - 10.0, speed_ms=5.0, time_s=280.0
        )
        assert solution.profile.positions_m.size == 2
        assert solution.profile.positions_m[-1] == us25.length_m
        assert solution.profile.speeds_ms[-1] == 0.0
        assert solution.profile.arrival_times_s[0] == pytest.approx(280.0)

    def test_final_segment_replan_with_fine_grid(self, us25):
        # Same edge on the default 10 m grid (the closed-loop driver's
        # 50 m end guard does not cover fine grids).
        fine = UnconstrainedDpPlanner(
            us25, config=PlannerConfig(v_step_ms=1.0, s_step_m=10.0, t_bin_s=2.0)
        )
        solution = fine.replan(position_m=us25.length_m - 3.0, speed_ms=4.0, time_s=280.0)
        assert solution.profile.positions_m[-1] == us25.length_m
        assert solution.profile.speeds_ms[-1] == 0.0


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def outcome(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        scenario = Us25Scenario(road=us25, arrival_rate_vph=300.0, warmup_s=300.0, seed=13)
        driver = ClosedLoopDriver(scenario, planner, replan_interval_s=20.0)
        return driver.run(depart_s=300.0, max_trip_time_s=320.0)

    def test_trip_completes(self, outcome, us25):
        assert outcome.ev_trace is not None
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0

    def test_replans_happened(self, outcome):
        assert outcome.replans_attempted >= 3
        assert outcome.replans_applied >= 1
        assert (
            outcome.replans_applied + outcome.replans_infeasible
            == outcome.replans_attempted
        )

    def test_validation(self, us25, coarse_config):
        planner = UnconstrainedDpPlanner(us25, config=coarse_config)
        scenario = Us25Scenario(road=us25, warmup_s=0.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(scenario, planner, replan_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(scenario, planner, deadline_slack_s=-1.0)

    def test_fallback_when_deadline_budget_collapses(self, us25, coarse_config):
        """With zero slack and heavy interference the remaining budget can
        become unattainable; the driver must fall back to min-time replans
        and still complete."""
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        scenario = Us25Scenario(road=us25, arrival_rate_vph=500.0, warmup_s=300.0, seed=21)
        driver = ClosedLoopDriver(
            scenario, planner, replan_interval_s=15.0, deadline_slack_s=0.0
        )
        floor = planner.min_trip_time(300.0)
        outcome = driver.run(depart_s=300.0, max_trip_time_s=floor + 1.0)
        assert outcome.ev_trace is not None
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0
