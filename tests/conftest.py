"""Shared fixtures: coarse-grid planners and small scenarios for speed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import PlannerConfig
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.route.us25 import us25_greenville_segment
from repro.signal.light import TrafficLight
from repro.units import kmh_to_ms
from repro.vehicle.params import chevrolet_spark_ev


@pytest.fixture(scope="session")
def vehicle():
    """The paper's Chevrolet Spark EV parameter set."""
    return chevrolet_spark_ev()


@pytest.fixture(scope="session")
def us25():
    """The full US-25 corridor with default timing."""
    return us25_greenville_segment()


@pytest.fixture(scope="session")
def coarse_config():
    """Planner discretization coarse enough for fast tests."""
    return PlannerConfig(
        v_step_ms=1.0,
        s_step_m=50.0,
        t_bin_s=2.0,
        horizon_s=500.0,
        window_margin_s=2.0,
    )


@pytest.fixture(scope="session")
def short_road():
    """A 1 km single-signal road for focused solver tests."""
    return RoadSegment(
        name="short test road",
        length_m=1000.0,
        zones=[
            SpeedLimitZone(0.0, 1000.0, v_max_ms=kmh_to_ms(54.0), v_min_ms=kmh_to_ms(28.8))
        ],
        stop_signs=[],
        signals=[
            SignalSite(
                position_m=600.0,
                light=TrafficLight(red_s=20.0, green_s=20.0),
                turn_ratio=0.8,
                queue_spacing_m=8.0,
            )
        ],
    )


@pytest.fixture(scope="session")
def plain_road():
    """A signal-free 800 m road with a stop sign."""
    return RoadSegment(
        name="plain road",
        length_m=800.0,
        zones=[SpeedLimitZone(0.0, 800.0, v_max_ms=15.0, v_min_ms=8.0)],
        stop_signs=[StopSign(300.0)],
    )
