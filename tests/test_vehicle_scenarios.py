"""Vehicle catalog, environment conditions, efficiency maps, scenario packs."""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownScenarioError, UnknownVehicleError
from repro.vehicle.catalog import (
    DEFAULT_VEHICLE_ID,
    describe_vehicle,
    get_vehicle,
    vehicle_ids,
)
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.efficiency import ConstantEfficiencyMap, InterpolatedEfficiencyMap
from repro.vehicle.environment import (
    NOMINAL_ENVIRONMENT,
    REFERENCE_TEMP_C,
    EnvironmentConditions,
)
from repro.vehicle.params import VehicleParams, chevrolet_spark_ev
from repro.vehicle.scenarios import (
    DEFAULT_SCENARIO_ID,
    get_scenario,
    scenario_ids,
)


class TestEnvironmentConditions:
    def test_nominal_scales_are_exactly_one(self):
        assert NOMINAL_ENVIRONMENT.air_density_scale == 1.0
        assert NOMINAL_ENVIRONMENT.rolling_resistance_scale == 1.0
        assert NOMINAL_ENVIRONMENT.is_nominal

    def test_cold_air_is_denser_and_rolls_worse(self):
        cold = EnvironmentConditions(ambient_temp_c=-10.0)
        assert cold.air_density_scale > 1.0
        assert cold.rolling_resistance_scale > 1.0
        assert not cold.is_nominal

    def test_hot_air_is_thinner(self):
        hot = EnvironmentConditions(ambient_temp_c=40.0)
        assert hot.air_density_scale < 1.0

    def test_rolling_scale_floors_at_half(self):
        # No physical temperature reaches the floor through the linear
        # law within the validated range, so the floor only guards
        # against future coefficient changes — probe via the formula.
        scorching = EnvironmentConditions(ambient_temp_c=60.0)
        assert scorching.rolling_resistance_scale >= 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ambient_temp_c": float("nan")},
            {"ambient_temp_c": 100.0},
            {"headwind_ms": 60.0},
            {"headwind_ms": float("inf")},
            {"payload_kg": -1.0},
            {"grade_offset_rad": 0.5},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigurationError):
            EnvironmentConditions(**kwargs)

    def test_canonical_parts_distinguish_fields(self):
        base = list(NOMINAL_ENVIRONMENT.canonical_parts())
        for env in (
            EnvironmentConditions(ambient_temp_c=0.0),
            EnvironmentConditions(headwind_ms=5.0),
            EnvironmentConditions(payload_kg=100.0),
            EnvironmentConditions(grade_offset_rad=0.01),
        ):
            assert list(env.canonical_parts()) != base

    def test_describe_mentions_reference_temp(self):
        assert f"{REFERENCE_TEMP_C:g}" in NOMINAL_ENVIRONMENT.describe()


class TestConstantEfficiencyMap:
    def test_matches_bare_constant_bitwise(self):
        params = chevrolet_spark_ev()
        eta = params.drivetrain_efficiency
        mapped = LongitudinalModel(
            VehicleParams(efficiency_map=ConstantEfficiencyMap(eta))
        )
        bare = LongitudinalModel()
        v = np.linspace(0.5, 35.0, 64)
        a = np.linspace(-1.5, 2.0, 64)
        assert np.array_equal(
            mapped.electrical_power(v, a), bare.electrical_power(v, a)
        )

    def test_eta_ignores_operating_point(self):
        emap = ConstantEfficiencyMap(0.8)
        assert emap.eta(3.0, 1e4) == 0.8
        assert emap.eta(30.0, -1e4) == 0.8


class TestInterpolatedEfficiencyMap:
    @pytest.fixture(scope="class")
    def emap(self):
        return InterpolatedEfficiencyMap.from_arrays(
            speeds_ms=[0.0, 10.0, 30.0],
            loads=[0.0, 0.5, 1.0],
            eta_grid=[[0.5, 0.6, 0.55], [0.7, 0.9, 0.85], [0.65, 0.88, 0.8]],
            rated_power_w=100_000.0,
        )

    def test_exact_at_breakpoints(self, emap):
        # load 0.5 of rated power at 10 m/s is a grid corner
        assert emap.eta(10.0, 50_000.0) == pytest.approx(0.9)

    def test_interpolates_between_breakpoints(self, emap):
        mid = emap.eta(5.0, 25_000.0)
        assert 0.5 < mid < 0.9

    def test_clips_outside_the_hull(self, emap):
        assert emap.eta(100.0, 1e9) == pytest.approx(emap.eta(30.0, 100_000.0))
        assert emap.eta(0.0, -5e5) == pytest.approx(emap.eta(0.0, 100_000.0))

    def test_vectorized_matches_scalar(self, emap):
        v = np.asarray([2.0, 12.0, 28.0])
        p = np.asarray([1e4, -4e4, 9e4])
        vec = emap.eta(v, p)
        for i in range(3):
            assert vec[i] == pytest.approx(emap.eta(float(v[i]), float(p[i])))

    def test_negative_power_uses_magnitude_load(self, emap):
        assert emap.eta(10.0, -50_000.0) == emap.eta(10.0, 50_000.0)

    def test_rejects_non_increasing_axes(self):
        with pytest.raises(ConfigurationError):
            InterpolatedEfficiencyMap.from_arrays(
                [0.0, 10.0, 10.0], [0.0, 1.0], np.full((3, 2), 0.9), 1e5
            )

    def test_rejects_eta_out_of_unit_interval(self):
        with pytest.raises(ConfigurationError):
            InterpolatedEfficiencyMap.from_arrays(
                [0.0, 10.0], [0.0, 1.0], [[0.9, 1.2], [0.9, 0.9]], 1e5
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            InterpolatedEfficiencyMap.from_arrays(
                [0.0, 10.0], [0.0, 1.0], np.full((3, 2), 0.9), 1e5
            )

    def test_pickle_round_trip_preserves_eta(self, emap):
        clone = pickle.loads(pickle.dumps(emap))
        assert clone == emap
        assert clone.eta(7.0, 33_000.0) == emap.eta(7.0, 33_000.0)

    def test_canonical_parts_change_with_grid(self, emap):
        other = InterpolatedEfficiencyMap.from_arrays(
            emap.speed_array, emap.load_array, emap.eta_array * 0.99, emap.rated_power_w
        )
        assert list(other.canonical_parts()) != list(emap.canonical_parts())


class TestCatalog:
    def test_default_vehicle_is_the_paper_spark_ev(self):
        vehicle = get_vehicle(DEFAULT_VEHICLE_ID)
        paper = chevrolet_spark_ev()
        assert vehicle.mass_kg == paper.mass_kg
        assert vehicle.drivetrain_efficiency == paper.drivetrain_efficiency
        assert vehicle.efficiency_map is None

    def test_every_vehicle_builds_and_consumes(self):
        for vid in vehicle_ids():
            vehicle = get_vehicle(vid)
            model = LongitudinalModel(vehicle)
            rate = model.consumption_rate_a(15.0, 0.2)
            assert np.isfinite(rate) and rate > 0.0

    def test_non_default_vehicles_carry_maps(self):
        for vid in vehicle_ids():
            if vid == DEFAULT_VEHICLE_ID:
                continue
            assert isinstance(
                get_vehicle(vid).efficiency_map, InterpolatedEfficiencyMap
            )

    def test_factories_return_fresh_instances(self):
        assert get_vehicle("city_ev") == get_vehicle("city_ev")

    def test_describe_every_vehicle(self):
        for vid in vehicle_ids():
            assert describe_vehicle(vid)

    def test_unknown_vehicle_raises_typed_error(self):
        with pytest.raises(UnknownVehicleError) as err:
            get_vehicle("warp-drive")
        assert "warp-drive" in str(err.value)
        assert DEFAULT_VEHICLE_ID in str(err.value)

    def test_vehicles_pickle_round_trip(self):
        for vid in vehicle_ids():
            vehicle = get_vehicle(vid)
            assert pickle.loads(pickle.dumps(vehicle)) == vehicle


class TestScenarioPacks:
    def test_default_scenario_is_nominal(self):
        pack = get_scenario(DEFAULT_SCENARIO_ID)
        assert pack.vehicle_id == DEFAULT_VEHICLE_ID
        assert pack.environment.is_nominal

    def test_every_pack_resolves_a_vehicle(self):
        for sid in scenario_ids():
            pack = get_scenario(sid)
            assert pack.vehicle().mass_kg > 0
            assert pack.vehicle_id in vehicle_ids()

    def test_non_nominal_packs_change_conditions(self):
        for sid in scenario_ids():
            if sid == DEFAULT_SCENARIO_ID:
                continue
            pack = get_scenario(sid)
            assert (not pack.environment.is_nominal) or (
                pack.vehicle_id != DEFAULT_VEHICLE_ID
            )

    def test_unknown_scenario_raises_typed_error(self):
        with pytest.raises(UnknownScenarioError) as err:
            get_scenario("mars-rover")
        assert "mars-rover" in str(err.value)
        assert DEFAULT_SCENARIO_ID in str(err.value)

    def test_all_packs_feasible_on_us25(self, us25, coarse_config):
        # Packs perturb energy, never kinematic feasibility: every pack
        # must plan wherever the nominal vehicle plans.
        from repro.core.planner import QueueAwareDpPlanner
        from repro.units import vehicles_per_hour_to_per_second

        rate = vehicles_per_hour_to_per_second(300.0)
        for sid in scenario_ids():
            pack = get_scenario(sid)
            planner = QueueAwareDpPlanner(
                us25,
                rate,
                vehicle=pack.vehicle(),
                config=coarse_config,
                environment=pack.environment,
            )
            solution = planner.plan(0.0, max_trip_time_s=320.0)
            assert np.isfinite(solution.energy_j)
