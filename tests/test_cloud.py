"""Vehicular-cloud planning service and fleet study."""

import numpy as np
import pytest

from repro.cloud import CloudPlannerService, FleetStudy, PlanRequest
from repro.core.planner import (
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.errors import ConfigurationError
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def service(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


class TestMessages:
    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="", depart_s=0.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=-1.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=0.0, max_trip_time_s=0.0)


class TestService:
    def test_cache_enabled_on_fixed_cycles(self, service):
        assert service.cache_enabled
        assert service._period_s == pytest.approx(60.0)

    def test_first_request_misses(self, service):
        service.clear_cache()
        response = service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        assert not response.cache_hit
        assert response.compute_time_s > 0

    def test_same_phase_hits(self, service):
        service.clear_cache()
        first = service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        second = service.request(PlanRequest("v2", depart_s=160.0, max_trip_time_s=320.0))
        assert second.cache_hit
        assert second.energy_mah == pytest.approx(first.energy_mah)
        assert second.compute_time_s == 0.0

    def test_shifted_profile_anchored_at_new_departure(self, service):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        shifted = service.request(PlanRequest("v2", depart_s=220.0, max_trip_time_s=320.0))
        assert shifted.cache_hit
        assert shifted.profile.arrival_times_s[0] == pytest.approx(220.0)

    def test_shifted_plan_still_hits_true_windows(self, service, us25):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        shifted = service.request(PlanRequest("v2", depart_s=160.0, max_trip_time_s=320.0))
        planner = service.planner
        for pos in us25.signal_positions():
            arrival = shifted.profile.arrival_time_at(pos)
            windows = planner.queue_model(pos).empty_windows(160.0, 600.0, RATE)
            assert any(w.contains(arrival) for w in windows)

    def test_different_phase_misses(self, service):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        other = service.request(PlanRequest("v2", depart_s=130.0, max_trip_time_s=320.0))
        assert not other.cache_hit

    def test_default_budget_uses_min_time_plus_slack(self, service):
        service.clear_cache()
        response = service.request(PlanRequest("v1", depart_s=100.0))
        floor = service.planner.min_trip_time(100.0)
        assert response.trip_time_s <= floor + service.default_budget_slack_s + 1e-6

    def test_stats_track_requests(self, service):
        service.clear_cache()
        service.stats.requests = 0
        service.stats.cache_hits = 0
        service.stats.cache_misses = 0
        service.request(PlanRequest("a", 100.0, 320.0))
        service.request(PlanRequest("b", 160.0, 320.0))
        assert service.stats.requests == 2
        assert service.stats.cache_hits == 1
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_no_signals_disables_cache(self, plain_road, coarse_config):
        planner = UnconstrainedDpPlanner(plain_road, config=coarse_config)
        service = CloudPlannerService(planner)
        assert not service.cache_enabled
        response = service.request(PlanRequest("v", depart_s=0.0, max_trip_time_s=200.0))
        assert not response.cache_hit

    def test_callable_rates_disable_cache(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=lambda t: RATE, config=coarse_config
        )
        assert not CloudPlannerService(planner).cache_enabled

    def test_quantum_validation(self, service):
        with pytest.raises(ConfigurationError):
            CloudPlannerService(service.planner, phase_quantum_s=0.0)


class TestFleet:
    def test_fleet_run(self, service, us25):
        service.clear_cache()
        study = FleetStudy(service, us25, fleet_rate_vph=80.0, seed=5)
        result = study.run(duration_s=400.0, human_reference_sample=1)
        assert result.n_vehicles >= 1
        assert result.planned_energy_mah > 0
        assert result.human_energy_mah > result.planned_energy_mah
        assert 0.0 < result.savings_pct < 60.0

    def test_fleet_validation(self, service, us25):
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, fleet_rate_vph=0.0)
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, mild_fraction=1.5)
        study = FleetStudy(service, us25)
        with pytest.raises(ConfigurationError):
            study.run(duration_s=0.0)
