"""Vehicular-cloud planning service and fleet study."""

import numpy as np
import pytest

from repro.cloud import CloudPlannerService, FleetStudy, PlanRequest
from repro.core.planner import (
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError, InfeasibleProblemError, PlanningFailedError
from repro.units import joules_to_mah, vehicles_per_hour_to_per_second
from repro.vehicle.params import BatteryPackParams, VehicleParams

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def service(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


@pytest.fixture
def fresh_service(us25, coarse_config):
    """A service with its own stats, safe to break in failure tests."""
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return CloudPlannerService(planner)


class TestMessages:
    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="", depart_s=0.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=-1.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=0.0, max_trip_time_s=0.0)


class TestService:
    def test_cache_enabled_on_fixed_cycles(self, service):
        assert service.cache_enabled
        assert service._period_s == pytest.approx(60.0)

    def test_first_request_misses(self, service):
        service.clear_cache()
        response = service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        assert not response.cache_hit
        assert response.compute_time_s > 0

    def test_same_phase_hits(self, service):
        service.clear_cache()
        first = service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        second = service.request(PlanRequest("v2", depart_s=160.0, max_trip_time_s=320.0))
        assert second.cache_hit
        assert second.energy_mah == pytest.approx(first.energy_mah)
        assert second.compute_time_s == 0.0

    def test_shifted_profile_anchored_at_new_departure(self, service):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        shifted = service.request(PlanRequest("v2", depart_s=220.0, max_trip_time_s=320.0))
        assert shifted.cache_hit
        assert shifted.profile.arrival_times_s[0] == pytest.approx(220.0)

    def test_shifted_plan_still_hits_true_windows(self, service, us25):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        shifted = service.request(PlanRequest("v2", depart_s=160.0, max_trip_time_s=320.0))
        planner = service.planner
        for pos in us25.signal_positions():
            arrival = shifted.profile.arrival_time_at(pos)
            windows = planner.queue_model(pos).empty_windows(160.0, 600.0, RATE)
            assert any(w.contains(arrival) for w in windows)

    def test_different_phase_misses(self, service):
        service.clear_cache()
        service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=320.0))
        other = service.request(PlanRequest("v2", depart_s=130.0, max_trip_time_s=320.0))
        assert not other.cache_hit

    def test_default_budget_uses_min_time_plus_slack(self, service):
        service.clear_cache()
        response = service.request(PlanRequest("v1", depart_s=100.0))
        floor = service.planner.min_trip_time(100.0)
        assert response.trip_time_s <= floor + service.default_budget_slack_s + 1e-6

    def test_stats_track_requests(self, service):
        service.clear_cache()
        service.stats.requests = 0
        service.stats.cache_hits = 0
        service.stats.cache_misses = 0
        service.request(PlanRequest("a", 100.0, 320.0))
        service.request(PlanRequest("b", 160.0, 320.0))
        assert service.stats.requests == 2
        assert service.stats.cache_hits == 1
        assert service.stats.hit_rate == pytest.approx(0.5)

    def test_no_signals_disables_cache(self, plain_road, coarse_config):
        planner = UnconstrainedDpPlanner(plain_road, config=coarse_config)
        service = CloudPlannerService(planner)
        assert not service.cache_enabled
        response = service.request(PlanRequest("v", depart_s=0.0, max_trip_time_s=200.0))
        assert not response.cache_hit

    def test_callable_rates_disable_cache(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=lambda t: RATE, config=coarse_config
        )
        assert not CloudPlannerService(planner).cache_enabled

    def test_quantum_validation(self, service):
        with pytest.raises(ConfigurationError):
            CloudPlannerService(service.planner, phase_quantum_s=0.0)


class TestFailureAccounting:
    def test_infeasible_request_raises_typed_error(self, fresh_service):
        with pytest.raises(PlanningFailedError) as excinfo:
            fresh_service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=5.0))
        assert excinfo.value.vehicle_id == "v1"
        assert excinfo.value.depart_s == 100.0
        assert isinstance(excinfo.value.__cause__, InfeasibleProblemError)

    def test_error_counted_and_invariant_holds(self, fresh_service):
        with pytest.raises(PlanningFailedError):
            fresh_service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=5.0))
        stats = fresh_service.stats
        assert stats.requests == 1
        assert stats.errors == 1
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors

    def test_hit_rate_unskewed_by_errors(self, fresh_service):
        fresh_service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        fresh_service.request(PlanRequest("b", depart_s=160.0, max_trip_time_s=320.0))
        with pytest.raises(PlanningFailedError):
            fresh_service.request(PlanRequest("c", depart_s=100.0, max_trip_time_s=5.0))
        # One miss, one hit, one error: the error must not drag the rate
        # down to 1/3.
        assert fresh_service.stats.hit_rate == pytest.approx(0.5)

    def test_failed_solve_time_still_accounted(self, fresh_service):
        with pytest.raises(PlanningFailedError):
            fresh_service.request(PlanRequest("v1", depart_s=100.0, max_trip_time_s=5.0))
        assert fresh_service.stats.total_compute_s > 0.0


class TestRevalidation:
    def test_phase_bin_edge_hit_lands_inside_windows(self, fresh_service, us25):
        """A request at the far edge of a phase bin must be served a plan
        whose signal arrivals lie inside the true queue-free windows, even
        though the cached profile's drift (just under ``phase_quantum_s``)
        can exceed the planner's window margin."""
        service = fresh_service
        d0 = 100.0
        service.request(PlanRequest("a", depart_s=d0, max_trip_time_s=320.0))
        # Same phase bin as d0, but with maximal quantization drift.
        d1 = d0 + service._period_s + service.phase_quantum_s - 1e-3
        response = service.request(PlanRequest("b", depart_s=d1, max_trip_time_s=320.0))
        planner = service.planner
        for pos in us25.signal_positions():
            arrival = response.profile.arrival_time_at(pos)
            windows = planner.queue_model(pos).empty_windows(d1, 600.0, RATE)
            assert any(w.contains(arrival) for w in windows)
        # Served either as a revalidated hit or as a revalidation-miss
        # fresh solve — but never as an unchecked stale hit.
        stats = service.stats
        if response.cache_hit:
            assert stats.revalidation_misses == 0
        else:
            assert stats.revalidation_misses == 1
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors

    def test_mid_bin_hit_revalidates_clean(self, fresh_service):
        service = fresh_service
        service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        response = service.request(PlanRequest("b", depart_s=160.0, max_trip_time_s=320.0))
        assert response.cache_hit
        assert service.stats.revalidation_misses == 0

    def test_poisoned_cache_falls_back_to_fresh_solve(self, fresh_service):
        service = fresh_service
        first = service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        # Replace the cached plan with a full-throttle profile that blows
        # through every signal window.
        (key,) = service.plan_cache.keys()
        profile = first.profile
        bogus = VelocityProfile(
            positions_m=profile.positions_m,
            speeds_ms=np.full_like(profile.speeds_ms, 19.0),
            dwell_s=np.zeros_like(profile.dwell_s),
            start_time_s=100.0,
        )
        service.plan_cache.put(key, (bogus, 1.0, 1.0))
        response = service.request(PlanRequest("b", depart_s=160.0, max_trip_time_s=320.0))
        assert not response.cache_hit
        assert service.stats.revalidation_misses == 1
        assert service.stats.cache_misses == 2
        # The fresh solve overwrote the poisoned entry: next request hits.
        again = service.request(PlanRequest("c", depart_s=220.0, max_trip_time_s=320.0))
        assert again.cache_hit


class TestReplanPath:
    def test_replan_request_validation(self):
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=0.0, position_m=-1.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=0.0, speed_ms=-1.0)
        with pytest.raises(ConfigurationError):
            PlanRequest(vehicle_id="x", depart_s=0.0, minimize="comfort")

    def test_is_replan_property(self):
        assert not PlanRequest("x", depart_s=0.0).is_replan
        assert PlanRequest("x", depart_s=0.0, position_m=100.0).is_replan
        assert PlanRequest("x", depart_s=0.0, speed_ms=5.0).is_replan

    def test_replan_bypasses_cache(self, fresh_service):
        service = fresh_service
        service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        replan = PlanRequest(
            "a", depart_s=130.0, max_trip_time_s=290.0, position_m=500.0, speed_ms=12.0
        )
        first = service.request(replan)
        second = service.request(replan)
        assert not first.cache_hit and not second.cache_hit
        assert first.compute_time_s > 0
        # Neither replan seeded the cache with a mid-route profile.
        cached = service.request(
            PlanRequest("b", depart_s=160.0, max_trip_time_s=320.0)
        )
        assert cached.cache_hit
        assert cached.profile.positions_m[0] == 0.0

    def test_replan_profile_covers_remaining_route(self, service, us25):
        response = service.request(
            PlanRequest("ev", depart_s=130.0, position_m=2000.0, speed_ms=15.0)
        )
        assert response.profile.positions_m[0] >= 2000.0
        assert response.profile.positions_m[-1] == us25.length_m
        assert response.profile.arrival_times_s[0] >= 130.0

    def test_min_time_objective_uncached(self, fresh_service):
        service = fresh_service
        service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        fast = service.request(PlanRequest("b", depart_s=160.0, minimize="time"))
        assert not fast.cache_hit

    def test_stats_invariant_holds_across_replans(self, fresh_service):
        service = fresh_service
        service.request(PlanRequest("a", depart_s=100.0, max_trip_time_s=320.0))
        service.request(PlanRequest("b", depart_s=160.0, max_trip_time_s=320.0))
        service.request(
            PlanRequest("a", depart_s=130.0, position_m=500.0, speed_ms=12.0)
        )
        with pytest.raises(PlanningFailedError):
            service.request(
                PlanRequest(
                    "a",
                    depart_s=130.0,
                    max_trip_time_s=5.0,
                    position_m=500.0,
                    speed_ms=12.0,
                )
            )
        stats = service.stats
        assert stats.requests == 4
        assert stats.errors == 1
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors

    def test_infeasible_replan_raises_typed_error(self, fresh_service):
        with pytest.raises(PlanningFailedError) as excinfo:
            fresh_service.request(
                PlanRequest(
                    "ev",
                    depart_s=130.0,
                    max_trip_time_s=5.0,
                    position_m=2000.0,
                    speed_ms=15.0,
                )
            )
        assert excinfo.value.vehicle_id == "ev"


class TestPackVoltage:
    def test_energy_mah_uses_solver_pack_voltage(self, us25, coarse_config):
        vehicle = VehicleParams(
            battery=BatteryPackParams(voltage_v=350.0, capacity_ah=46.2)
        )
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=RATE, vehicle=vehicle, config=coarse_config
        )
        solution = planner.plan(0.0, max_trip_time_s=320.0)
        assert solution.pack_voltage_v == 350.0
        assert solution.energy_mah == pytest.approx(
            joules_to_mah(solution.energy_j, 350.0)
        )
        assert solution.energy_mah != pytest.approx(
            joules_to_mah(solution.energy_j, 399.0)
        )


class TestFleet:
    def test_fleet_run(self, service, us25):
        service.clear_cache()
        study = FleetStudy(service, us25, fleet_rate_vph=80.0, seed=5)
        result = study.run(duration_s=400.0, human_reference_sample=1)
        assert result.n_vehicles >= 1
        assert result.planned_energy_mah > 0
        assert result.human_energy_mah > result.planned_energy_mah
        assert 0.0 < result.savings_pct < 60.0

    def test_fleet_survives_one_infeasible_request(
        self, fresh_service, us25, monkeypatch
    ):
        service = fresh_service
        planner = service.planner
        real_plan = planner.plan
        calls = {"n": 0}

        def flaky_plan(*args, **kwargs):
            calls["n"] += 1
            # The first vehicle's min-time calibration runs a capped solve
            # and, on infeasibility, an uncapped fallback — fail both so
            # the failure actually reaches the vehicle.
            if calls["n"] <= 2:
                raise InfeasibleProblemError("forced for test")
            return real_plan(*args, **kwargs)

        monkeypatch.setattr(planner, "plan", flaky_plan)
        study = FleetStudy(service, us25, fleet_rate_vph=80.0, seed=5)
        result = study.run(duration_s=400.0, human_reference_sample=1)

        assert result.n_failed == 1
        assert result.failed_vehicle_ids == ["ev0"]
        assert service.stats.errors == 1
        assert result.n_vehicles == service.stats.requests - 1
        stats = service.stats
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors
        # The failed departure is excluded from both energy sums, so the
        # comparison stays meaningful.
        assert result.planned_energy_mah > 0
        assert result.human_energy_mah > result.planned_energy_mah

    def test_fleet_validation(self, service, us25):
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, fleet_rate_vph=0.0)
        with pytest.raises(ConfigurationError):
            FleetStudy(service, us25, mild_fraction=1.5)
        study = FleetStudy(service, us25)
        with pytest.raises(ConfigurationError):
            study.run(duration_s=0.0)
