"""Signal-offset coordination analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone
from repro.route.us25 import us25_greenville_segment
from repro.signal.coordination import (
    evaluate_progression,
    optimize_offsets,
    _with_offsets,
)
from repro.signal.light import TrafficLight
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(200.0)


def two_signal_road(offset2=0.0, red=20.0, green=20.0):
    return RoadSegment(
        name="coord road",
        length_m=2000.0,
        zones=[SpeedLimitZone(0.0, 2000.0, v_max_ms=15.0, v_min_ms=10.0)],
        signals=[
            SignalSite(position_m=500.0, light=TrafficLight(red_s=red, green_s=green)),
            SignalSite(
                position_m=1500.0,
                light=TrafficLight(red_s=red, green_s=green, offset_s=offset2),
            ),
        ],
    )


class TestEvaluateProgression:
    def test_perfect_offsets_give_positive_bandwidth(self):
        # Travel time between signals at 10 m/s is 100 s = 2.5 cycles; an
        # offset of half a cycle aligns the windows.
        road = two_signal_road(offset2=20.0)
        report = evaluate_progression(road, 10.0, RATE)
        assert report.bandwidth_s > 0

    def test_bandwidth_bounded_by_usable_green(self):
        road = two_signal_road(offset2=10.0)
        report = evaluate_progression(road, 10.0, RATE)
        assert report.bandwidth_s <= min(report.usable_green_s) + 1.0

    def test_usable_green_reflects_queue_clearing(self):
        road = two_signal_road()
        report = evaluate_progression(road, 10.0, RATE)
        for usable in report.usable_green_s:
            assert 0.0 < usable < 20.0  # strictly less than raw green

    def test_oversaturated_signal_kills_bandwidth(self):
        road = two_signal_road(red=38.0, green=2.0)
        report = evaluate_progression(
            road, 10.0, vehicles_per_hour_to_per_second(1200.0)
        )
        assert report.bandwidth_s == 0.0

    def test_validation(self):
        road = two_signal_road()
        with pytest.raises(ConfigurationError):
            evaluate_progression(road, 0.0, RATE)
        plain = RoadSegment(
            name="no signals",
            length_m=100.0,
            zones=[SpeedLimitZone(0.0, 100.0, v_max_ms=15.0)],
        )
        with pytest.raises(ConfigurationError):
            evaluate_progression(plain, 10.0, RATE)

    def test_mixed_cycles_rejected(self):
        road = RoadSegment(
            name="mixed",
            length_m=2000.0,
            zones=[SpeedLimitZone(0.0, 2000.0, v_max_ms=15.0, v_min_ms=10.0)],
            signals=[
                SignalSite(position_m=500.0, light=TrafficLight(red_s=20.0, green_s=20.0)),
                SignalSite(position_m=1500.0, light=TrafficLight(red_s=30.0, green_s=30.0)),
            ],
        )
        with pytest.raises(ConfigurationError):
            evaluate_progression(road, 10.0, RATE)


class TestOptimizeOffsets:
    def test_optimum_at_least_as_good_as_current(self):
        road = two_signal_road(offset2=7.0)
        current = evaluate_progression(road, 10.0, RATE)
        _, best = optimize_offsets(road, 10.0, RATE, offset_step_s=5.0)
        assert best.bandwidth_s >= current.bandwidth_s - 1e-9

    def test_first_offset_pinned_to_zero(self):
        road = two_signal_road()
        offsets, _ = optimize_offsets(road, 10.0, RATE, offset_step_s=10.0)
        assert offsets[0] == 0.0

    def test_us25_offsets_searchable(self, us25):
        offsets, report = optimize_offsets(us25, 15.0, RATE, offset_step_s=10.0)
        assert len(offsets) == 2
        assert report.bandwidth_s >= 0.0

    def test_with_offsets_helper(self):
        road = two_signal_road()
        shifted = _with_offsets(road, [5.0, 25.0])
        assert shifted.signals[0].light.offset_s == 5.0
        assert shifted.signals[1].light.offset_s == 25.0
        with pytest.raises(ConfigurationError):
            _with_offsets(road, [1.0])
