"""Bit-identity regression: the scenario layer leaves the paper path alone.

The catalog/environment refactor threads a vehicle registry and ambient
conditions through the whole stack.  At the paper's defaults (Spark EV,
20 °C, calm, unladen) every correction is *exactly* inert, so plans,
energies, the Fig. 3 surface and the serving counters must reproduce the
pre-refactor output bit for bit.  The constants below were captured on
the commit immediately before the refactor with the exact recipes used
here; any drift means the nominal path is no longer the paper's model.
"""

import hashlib

import numpy as np
import pytest

from repro.cloud.messages import PlanRequest
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.engine.artifacts import corridor_digest
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second
from repro.vehicle.catalog import get_vehicle
from repro.vehicle.efficiency import ConstantEfficiencyMap
from repro.vehicle.environment import NOMINAL_ENVIRONMENT
from repro.vehicle.params import VehicleParams, chevrolet_spark_ev

#: The exact grid the goldens were captured at (the suite's coarse grid).
GOLDEN_CONFIG = PlannerConfig(
    v_step_ms=1.0, s_step_m=50.0, t_bin_s=2.0, horizon_s=500.0, window_margin_s=2.0
)
GOLDEN_RATE_VPH = 300.0

PLAN_ENERGY_J = 1688838.3619312106
PLAN_TRIP_S = 318.7016880889743
PLAN_SPEEDS_SHA = "dd3751c80f0dd051f7af75d23c0261f243e8b2e0467ad1e061e6a8546f46decf"
PLAN_ARRIVALS = {1820.0: 156.8355459022625, 3460.0: 252.83758731108026}

REPLAN_ENERGY_J = 938904.4116899997
REPLAN_TRIP_S = 264.77365728900253
REPLAN_SPEEDS_SHA = "fea5efb4dbb71baafe09dbcd1bb4eb9e5c16128000032b137364b3e74e2fce3d"

FIG3_SURFACE_SHA = "4df6b529d60eb8dd59ca4e1fd519f1f93380f133a5a3c76c0cbe7da4ac5e866f"
FIG3_CORNER = 107.57764022358258
FIG3_REGEN_SAMPLE = -9.520511904761904


def _sha(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _planner(store=None, vehicle=None, environment=None):
    return QueueAwareDpPlanner(
        us25_greenville_segment(),
        arrival_rates=vehicles_per_hour_to_per_second(GOLDEN_RATE_VPH),
        vehicle=vehicle,
        config=GOLDEN_CONFIG,
        store=store,
        environment=environment,
    )


#: Ways of spelling "the paper's vehicle in the paper's conditions" that
#: must all hit the identical code path and artifacts.
NOMINAL_SPELLINGS = {
    "implicit": dict(vehicle=None, environment=None),
    "catalog": dict(vehicle=get_vehicle("spark_ev"), environment=None),
    "explicit-env": dict(
        vehicle=get_vehicle("spark_ev"), environment=NOMINAL_ENVIRONMENT
    ),
}


class TestPlanGoldens:
    @pytest.mark.parametrize("spelling", sorted(NOMINAL_SPELLINGS))
    def test_plan_reproduces_the_seed_exactly(self, spelling):
        solution = _planner(**NOMINAL_SPELLINGS[spelling]).plan(
            start_time_s=0.0, max_trip_time_s=320.0
        )
        assert solution.energy_j == PLAN_ENERGY_J
        assert solution.trip_time_s == PLAN_TRIP_S
        assert _sha(solution.profile.speeds_ms) == PLAN_SPEEDS_SHA
        assert solution.signal_arrivals == PLAN_ARRIVALS

    def test_replan_reproduces_the_seed_exactly(self):
        solution = _planner().replan(position_m=1234.0, speed_ms=11.0, time_s=60.0)
        assert solution.energy_j == REPLAN_ENERGY_J
        assert solution.trip_time_s == REPLAN_TRIP_S
        assert _sha(solution.profile.speeds_ms) == REPLAN_SPEEDS_SHA


class TestFig3Golden:
    def test_energy_surface_bitwise(self):
        from repro.experiments.fig3_energy_map import run as fig3_run

        result = fig3_run()
        assert _sha(result.rate_mah_s) == FIG3_SURFACE_SHA
        assert result.rate_mah_s[-1, -1] == FIG3_CORNER
        assert result.rate_mah_s[0, 30] == FIG3_REGEN_SAMPLE


class TestServiceCounterGoldens:
    def test_serving_counters_reproduce_the_seed(self):
        """Replan + a phased request stream: cache keys, revalidation
        behaviour and artifact-store traffic must match the seed run."""
        store = ArtifactStore()
        planner = _planner(store=store)
        planner.replan(position_m=1234.0, speed_ms=11.0, time_s=60.0)
        service = CloudPlannerService(planner)
        for i, depart in enumerate([0.0, 60.0, 0.4, 120.0, 60.2, 0.1]):
            service.request(
                PlanRequest(vehicle_id=f"v{i}", depart_s=depart, max_trip_time_s=320.0)
            )
        stats = service.stats_snapshot()
        assert stats.requests == 6
        assert stats.cache_hits == 2
        assert stats.cache_misses == 4
        assert stats.errors == 0
        assert stats.revalidation_misses == 3
        assert store.stats().hits == 0
        assert store.stats().misses == 1


class TestDigestCompatibility:
    def test_nominal_spellings_share_one_digest(self):
        road = us25_greenville_segment()
        digests = {
            corridor_digest(road, chevrolet_spark_ev(), v_step_ms=1.0, s_step_m=50.0),
            corridor_digest(road, VehicleParams(), v_step_ms=1.0, s_step_m=50.0),
            corridor_digest(
                road, get_vehicle("spark_ev"), v_step_ms=1.0, s_step_m=50.0
            ),
            corridor_digest(
                road,
                get_vehicle("spark_ev"),
                environment=NOMINAL_ENVIRONMENT,
                v_step_ms=1.0,
                s_step_m=50.0,
            ),
        }
        assert len(digests) == 1

    def test_constant_map_is_the_same_physics(self):
        """No map and a constant map at eta_1*eta_2 digest identically —
        the artifact store never rebuilds for a pure respelling."""
        road = us25_greenville_segment()
        bare = chevrolet_spark_ev()
        mapped = VehicleParams(
            battery=bare.battery,
            efficiency_map=ConstantEfficiencyMap(bare.drivetrain_efficiency),
        )
        assert corridor_digest(road, bare, v_step_ms=1.0, s_step_m=50.0) == (
            corridor_digest(road, mapped, v_step_ms=1.0, s_step_m=50.0)
        )
