"""Battery-wear model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.vehicle.wear import BatteryWearModel, WearModelParams, WearReport


@pytest.fixture(scope="module")
def model():
    return BatteryWearModel()


def cruise_trace(duration=100.0, speed=15.0, dt=0.5):
    times = np.arange(0.0, duration + dt, dt)
    return times, np.full_like(times, speed)


def stop_and_go_trace(cycles=5, dt=0.5):
    times = [0.0]
    speeds = [0.0]
    t = 0.0
    for _ in range(cycles):
        t += 8.0
        times.append(t)
        speeds.append(16.0)
        t += 12.0
        times.append(t)
        speeds.append(0.0)
    return np.asarray(times), np.asarray(speeds)


class TestWearModel:
    def test_cruise_wear_positive(self, model):
        report = model.assess(*cruise_trace())
        assert report.throughput_ah > 0
        assert 0 < report.life_fraction < 1e-3

    def test_stop_and_go_wears_more_per_second(self, model):
        t_c, v_c = cruise_trace(duration=100.0)
        t_s, v_s = stop_and_go_trace(cycles=5)
        cruise = model.assess(t_c, v_c)
        churn = model.assess(t_s, v_s)
        assert churn.throughput_ah / t_s[-1] > cruise.throughput_ah / t_c[-1]

    def test_regen_counts_as_throughput(self, model):
        times = np.asarray([0.0, 10.0, 20.0])
        speeds = np.asarray([0.0, 16.0, 0.0])
        report = model.assess(times, speeds)
        accel_only = model.assess(times[:2], speeds[:2])
        assert report.throughput_ah > accel_only.throughput_ah

    def test_stress_weighting_kicks_in_above_1c(self, model):
        gentle = BatteryWearModel(params=WearModelParams(c_rate_stress=0.0))
        harsh = BatteryWearModel(params=WearModelParams(c_rate_stress=2.0))
        t, v = stop_and_go_trace(cycles=3)
        g = gentle.assess(t, v)
        h = harsh.assess(t, v)
        if g.peak_c_rate > 1.0:
            assert h.stress_weighted_ah > g.stress_weighted_ah
        assert g.stress_weighted_ah == pytest.approx(g.throughput_ah)

    def test_life_fraction_scales_with_rated_cycles(self):
        short = BatteryWearModel(params=WearModelParams(rated_cycles=500.0))
        long = BatteryWearModel(params=WearModelParams(rated_cycles=2000.0))
        t, v = cruise_trace()
        assert short.assess(t, v).life_fraction == pytest.approx(
            4.0 * long.assess(t, v).life_fraction
        )

    def test_ppm_property(self):
        report = WearReport(
            throughput_ah=1.0,
            stress_weighted_ah=1.0,
            equivalent_full_cycles=0.01,
            life_fraction=1e-6,
            peak_c_rate=0.5,
        )
        assert report.life_fraction_ppm == pytest.approx(1.0)

    def test_assess_trace_overload(self, model, us25):
        from repro.core.profile import VelocityProfile

        profile = VelocityProfile([0.0, 200.0, 400.0], [0.0, 14.0, 0.0])
        report = model.assess_trace(profile.to_time_trace(0.5))
        assert report.throughput_ah > 0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.assess([0.0], [1.0])
        with pytest.raises(ValueError):
            model.assess([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            model.assess([0.0, 1.0], [1.0, -1.0])
        with pytest.raises(ConfigurationError):
            WearModelParams(rated_cycles=0.0)
        with pytest.raises(ConfigurationError):
            WearModelParams(c_rate_stress=-1.0)
