"""Input contracts: fuzzed garbage through every validate_* entry point."""

import math

import pytest

from repro.cloud.messages import PlanRequest
from repro.errors import ConfigurationError, InputValidationError
from repro.guard.contracts import (
    SPEED_CEILING_MS,
    validate_plan_request,
    validate_road_dict,
    validate_trace_rows,
    validate_volume_rows,
)
from repro.route.io import road_to_dict
from repro.route.us25 import us25_greenville_segment

NAN = float("nan")
INF = float("inf")


@pytest.fixture()
def road_dict(us25):
    return road_to_dict(us25)


def _clone(data):
    return {
        **data,
        "zones": [dict(z) for z in data["zones"]],
        "signals": [dict(s) for s in data["signals"]],
        "stop_signs": list(data["stop_signs"]),
        "grade": {k: list(v) for k, v in data["grade"].items()},
    }


class TestRoadContract:
    def test_valid_road_passes_unchanged(self, road_dict):
        data, report = validate_road_dict(road_dict, source="us25")
        assert data is road_dict
        assert not report

    def test_error_is_also_configuration_and_value_error(self, road_dict):
        bad = _clone(road_dict)
        bad["length_m"] = NAN
        with pytest.raises(InputValidationError) as err:
            validate_road_dict(bad)
        assert isinstance(err.value, ConfigurationError)
        assert isinstance(err.value, ValueError)
        assert err.value.field == "length_m"

    @pytest.mark.parametrize("length", [NAN, INF, -INF, 0.0, -4000.0, 300_000.0])
    def test_degenerate_lengths_rejected(self, road_dict, length):
        bad = _clone(road_dict)
        bad["length_m"] = length
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)

    @pytest.mark.parametrize("section", ["name", "length_m", "zones", "stop_signs", "signals"])
    def test_missing_sections_rejected(self, road_dict, section):
        bad = _clone(road_dict)
        del bad[section]
        with pytest.raises(InputValidationError) as err:
            validate_road_dict(bad)
        assert err.value.field == section

    def test_zone_gap_rejected(self, road_dict):
        bad = _clone(road_dict)
        bad["zones"][0]["start_m"] = 5.0  # route starts at 0: a gap
        with pytest.raises(InputValidationError, match="without gaps"):
            validate_road_dict(bad)

    def test_zones_short_of_route_end_rejected(self, road_dict):
        bad = _clone(road_dict)
        bad["zones"][-1]["end_m"] -= 50.0
        with pytest.raises(InputValidationError, match="route is"):
            validate_road_dict(bad)

    @pytest.mark.parametrize("v_max", [NAN, 0.0, -5.0, SPEED_CEILING_MS + 1.0])
    def test_zone_speed_limits_fuzzed(self, road_dict, v_max):
        bad = _clone(road_dict)
        bad["zones"][0]["v_max_ms"] = v_max
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)

    def test_negative_zone_length_rejected(self, road_dict):
        bad = _clone(road_dict)
        bad["zones"][0]["end_m"] = bad["zones"][0]["start_m"] - 1.0
        with pytest.raises(InputValidationError, match="must exceed start"):
            validate_road_dict(bad)

    def test_v_min_above_v_max_clamped_in_repair_mode(self, road_dict):
        bad = _clone(road_dict)
        v_max = bad["zones"][0]["v_max_ms"]
        bad["zones"][0]["v_min_ms"] = v_max + 3.0
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)
        repaired, report = validate_road_dict(bad, repair=True)
        assert repaired["zones"][0]["v_min_ms"] == v_max
        assert len(report) == 1 and report.repairs[0].action == "clamped"
        assert "v_min_ms" in report.summary()

    def test_off_route_stop_sign_dropped_in_repair_mode(self, road_dict):
        bad = _clone(road_dict)
        bad["stop_signs"].append(bad["length_m"] + 100.0)
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)
        repaired, report = validate_road_dict(bad, repair=True)
        assert repaired["stop_signs"] == road_dict["stop_signs"]
        assert report.repairs[0].action == "dropped"

    @pytest.mark.parametrize("mutate", [
        lambda d: d["signals"][0].__setitem__("position_m", -10.0),
        lambda d: d["signals"][0].__setitem__("position_m", NAN),
        lambda d: d["signals"][0].__setitem__("red_s", 0.0),
        lambda d: d["signals"][0].__setitem__("green_s", -20.0),
        lambda d: d["signals"][0].__setitem__("turn_ratio", 0.0),
        lambda d: d["signals"][0].__setitem__("turn_ratio", 1.7),
        lambda d: d["signals"][0].__setitem__("queue_spacing_m", 0.0),
        lambda d: d["signals"][0].pop("red_s"),
    ])
    def test_signal_fields_fuzzed(self, road_dict, mutate):
        bad = _clone(road_dict)
        mutate(bad)
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)

    @pytest.mark.parametrize("mutate", [
        lambda g: g["positions_m"].__setitem__(0, NAN),
        lambda g: g["grades_rad"].__setitem__(0, 1.2),
        lambda g: g["grades_rad"].pop(),
    ])
    def test_grade_fuzzed(self, road_dict, mutate):
        bad = _clone(road_dict)
        mutate(bad["grade"])
        with pytest.raises(InputValidationError):
            validate_road_dict(bad)

    def test_shuffled_grade_positions_rejected(self, road_dict):
        bad = _clone(road_dict)
        bad["grade"] = {"positions_m": [100.0, 0.0], "grades_rad": [0.0, 0.01]}
        with pytest.raises(InputValidationError, match="strictly increasing"):
            validate_road_dict(bad)


class TestTraceContract:
    ROWS = [(float(i), 10.0 * i, 10.0) for i in range(6)]

    def test_valid_rows_survive(self):
        rows, report = validate_trace_rows(self.ROWS)
        assert rows == self.ROWS
        assert not report

    @pytest.mark.parametrize("value", [NAN, INF, -INF])
    def test_nonfinite_cells_rejected_then_dropped(self, value):
        rows = list(self.ROWS)
        rows[2] = (2.0, 20.0, value)
        with pytest.raises(InputValidationError) as err:
            validate_trace_rows(rows, source="t.csv")
        assert err.value.row == 2 and err.value.source == "t.csv"
        kept, report = validate_trace_rows(rows, repair=True)
        assert len(kept) == 5 and len(report) == 1

    def test_small_negative_speed_clamped_large_rejected(self):
        rows = list(self.ROWS)
        rows[1] = (1.0, 10.0, -0.2)
        kept, report = validate_trace_rows(rows, repair=True)
        assert kept[1][2] == 0.0 and report.repairs[0].action == "clamped"
        rows[1] = (1.0, 10.0, -30.0)
        with pytest.raises(InputValidationError):
            validate_trace_rows(rows, repair=True)

    def test_speed_above_ceiling_never_repaired(self):
        rows = list(self.ROWS)
        rows[3] = (3.0, 30.0, SPEED_CEILING_MS + 50.0)
        with pytest.raises(InputValidationError, match="unit error"):
            validate_trace_rows(rows, repair=True)

    def test_shuffled_timestamps_rejected_then_dropped(self):
        rows = list(self.ROWS)
        rows[2], rows[3] = rows[3], rows[2]
        with pytest.raises(InputValidationError, match="strictly increasing"):
            validate_trace_rows(rows)
        kept, report = validate_trace_rows(rows, repair=True)
        assert [r[0] for r in kept] == sorted(r[0] for r in kept)
        assert len(report) == 1

    def test_backwards_position_rejected_then_dropped(self):
        rows = list(self.ROWS)
        rows[4] = (4.0, 5.0, 10.0)
        with pytest.raises(InputValidationError, match="non-decreasing"):
            validate_trace_rows(rows)
        kept, _ = validate_trace_rows(rows, repair=True)
        assert len(kept) == 5

    def test_too_few_survivors_rejected_even_in_repair_mode(self):
        rows = [(0.0, 0.0, NAN), (1.0, 10.0, NAN), (2.0, 20.0, 5.0)]
        with pytest.raises(InputValidationError, match="at least two"):
            validate_trace_rows(rows, repair=True)


class TestVolumeContract:
    ROWS = [(h, 100.0 + h) for h in range(5)]

    def test_valid_rows_survive(self):
        rows, report = validate_volume_rows(self.ROWS)
        assert rows == self.ROWS
        assert not report

    def test_empty_series_rejected(self):
        with pytest.raises(InputValidationError, match="empty"):
            validate_volume_rows([])

    def test_hour_gap_never_repaired(self):
        rows = [(0, 100.0), (1, 110.0), (5, 120.0)]
        for repair in (False, True):
            with pytest.raises(InputValidationError, match="consecutive"):
                validate_volume_rows(rows, repair=repair)

    def test_shuffled_hours_never_repaired(self):
        rows = [(1, 100.0), (0, 110.0), (2, 120.0)]
        with pytest.raises(InputValidationError):
            validate_volume_rows(rows, repair=True)

    def test_fractional_hour_rejected(self):
        with pytest.raises(InputValidationError, match="integer"):
            validate_volume_rows([(0.5, 100.0), (1.5, 110.0)])

    def test_negative_volume_clamped(self):
        rows = [(0, 100.0), (1, -20.0), (2, 120.0)]
        with pytest.raises(InputValidationError):
            validate_volume_rows(rows)
        kept, report = validate_volume_rows(rows, repair=True)
        assert kept[1] == (1, 0.0) and len(report) == 1

    def test_nan_volume_carries_previous_hour_forward(self):
        rows = [(0, 100.0), (1, NAN), (2, 120.0)]
        kept, report = validate_volume_rows(rows, repair=True)
        assert kept[1] == (1, 100.0)
        assert "previous hour" in report.repairs[0].detail

    def test_leading_nan_volume_unrepairable(self):
        rows = [(0, NAN), (1, 100.0)]
        with pytest.raises(InputValidationError):
            validate_volume_rows(rows, repair=True)


class TestPlanRequestContract:
    @pytest.mark.parametrize("kwargs", [
        {"depart_s": NAN},
        {"depart_s": INF},
        {"speed_ms": NAN},
        {"position_m": NAN},
        {"max_trip_time_s": NAN},
        {"speed_ms": SPEED_CEILING_MS + 1.0},
    ])
    def test_nonfinite_fields_rejected_at_construction(self, kwargs):
        with pytest.raises(InputValidationError):
            PlanRequest(**{"vehicle_id": "ev", "depart_s": 0.0, **kwargs})

    def test_off_route_position_needs_route_length(self):
        req = PlanRequest(vehicle_id="ev", depart_s=0.0, position_m=9000.0, speed_ms=1.0)
        validate_plan_request(req)  # length unknown: passes
        with pytest.raises(InputValidationError, match="past the route end"):
            validate_plan_request(req, route_length_m=4180.0)

    def test_valid_request_still_constructs(self):
        req = PlanRequest(vehicle_id="ev", depart_s=10.0, max_trip_time_s=300.0)
        assert req.depart_s == 10.0

    def test_error_message_carries_field_path(self):
        with pytest.raises(InputValidationError) as err:
            PlanRequest(vehicle_id="ev", depart_s=NAN)
        assert err.value.field == "depart_s"
        assert "depart_s" in str(err.value)


class TestErrorStructure:
    def test_row_and_field_render_in_message(self):
        with pytest.raises(InputValidationError) as err:
            validate_trace_rows([(0.0, 0.0, 1.0), (1.0, 1.0, -9.0)], source="x.csv")
        msg = str(err.value)
        assert "x.csv" in msg and "row 1" in msg and "speed_ms" in msg
        assert err.value.reason.startswith("speed must be")

    def test_obs_counters_increment(self):
        from repro import obs

        registry = obs.get_registry()
        registry.enabled = True
        registry.reset()
        try:
            with pytest.raises(InputValidationError):
                validate_volume_rows([(0, -1.0)])
            validate_volume_rows([(0, -1.0)], repair=True)
            assert registry.counter_value("guard.input_errors") == 1
            assert registry.counter_value("guard.input_repairs") == 1
        finally:
            registry.enabled = False
            registry.reset()
