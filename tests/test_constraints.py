"""Eq. 7 constraint auditing of velocity profiles."""

import pytest

from repro.core.constraints import check_profile
from repro.core.profile import VelocityProfile
from repro.route.road import RoadSegment, SpeedLimitZone, StopSign


@pytest.fixture
def road():
    return RoadSegment(
        name="audit road",
        length_m=400.0,
        zones=[SpeedLimitZone(0.0, 400.0, v_max_ms=15.0, v_min_ms=8.0)],
        stop_signs=[StopSign(200.0)],
    )


def legal_profile():
    return VelocityProfile(
        positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
        speeds_ms=[0.0, 12.0, 0.0, 12.0, 0.0],
        dwell_s=[0.0, 0.0, 2.0, 0.0, 0.0],
    )


class TestCheckProfile:
    def test_legal_profile_passes(self, road):
        report = check_profile(legal_profile(), road)
        assert report.ok
        assert "satisfied" in str(report)

    def test_speed_limit_violation_detected(self, road):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 16.0, 0.0, 12.0, 0.0],
        )
        report = check_profile(profile, road)
        assert not report.ok
        assert any(v.kind == "speed_max" for v in report.violations)

    def test_acceleration_violation_detected(self, road):
        profile = VelocityProfile(
            positions_m=[0.0, 20.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 12.0, 0.0, 12.0, 0.0],  # a = 3.6 m/s^2 over 20 m
        )
        report = check_profile(profile, road)
        assert any(v.kind == "accel" for v in report.violations)

    def test_missed_stop_sign_detected(self, road):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 12.0, 12.0, 12.0, 0.0],
        )
        report = check_profile(profile, road)
        assert any(v.kind == "stop" for v in report.violations)

    def test_nonzero_boundary_detected(self, road):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 12.0, 0.0, 12.0, 3.0],
        )
        report = check_profile(profile, road)
        assert any(v.kind == "boundary" for v in report.violations)

    def test_min_speed_enforcement_optional(self, road):
        crawler = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 4.0, 0.0, 4.0, 0.0],
        )
        assert check_profile(crawler, road).ok
        report = check_profile(crawler, road, enforce_min_speed=True)
        assert any(v.kind == "speed_min" for v in report.violations)

    def test_min_speed_exempt_near_stops(self, road):
        profile = legal_profile()
        report = check_profile(profile, road, enforce_min_speed=True)
        # Speeds near the mandatory stops are below v_min by necessity but
        # must not be flagged.
        assert report.ok

    def test_violation_str_mentions_position(self, road):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0, 300.0, 400.0],
            speeds_ms=[0.0, 16.0, 0.0, 12.0, 0.0],
        )
        report = check_profile(profile, road)
        assert "100.0 m" in str(report)
