"""Router: deterministic sharding, drop-in identity, corridor isolation."""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.cloud.fleet import FleetStudy
from repro.cloud.messages import PlanRequest
from repro.cloud.registry import builtin_catalog
from repro.cloud.router import PlanRouter, shard_of
from repro.cloud.stats import compose_stats_document
from repro.core.engine import ArtifactStore
from repro.core.engine.artifacts import corridor_digest
from repro.errors import ConfigurationError, UnknownCorridorError
from repro.vehicle.params import chevrolet_spark_ev


@pytest.fixture()
def catalog(coarse_config):
    return builtin_catalog(config=coarse_config)


@pytest.fixture()
def router(catalog):
    return PlanRouter(catalog)


def _req(vehicle_id, corridor_id, depart_s=30.0, **kwargs):
    return PlanRequest(
        vehicle_id=vehicle_id, depart_s=depart_s, corridor_id=corridor_id, **kwargs
    )


class TestSharding:
    def test_shard_mapping_is_crc32_not_randomized_hash(self, router):
        for cid in router.catalog.ids():
            expected = zlib.crc32(cid.encode("utf-8")) % router.shards
            assert router.shard_of(cid) == expected
            assert shard_of(cid, router.shards) == expected

    def test_defaults_and_validation(self, catalog):
        assert PlanRouter(catalog).shards == len(catalog)
        assert PlanRouter(catalog, shards=2).shards == 2
        with pytest.raises(ConfigurationError):
            PlanRouter(catalog, shards=0)
        with pytest.raises(ConfigurationError):
            PlanRouter(catalog, lane_workers=-1)


class TestRoutingIdentity:
    def test_routed_single_corridor_is_bit_identical_to_direct(
        self, coarse_config
    ):
        """The router is a pure routing layer: same corridor, same bits."""
        direct = builtin_catalog(config=coarse_config).service("us25")
        routed = PlanRouter(builtin_catalog(config=coarse_config))
        departures = [10.0, 40.0, 10.0, 70.0, 40.0]  # repeats exercise the cache
        for i, depart in enumerate(departures):
            req = _req(f"ev{i}", "us25", depart_s=depart)
            a = direct.request(req)
            b = routed.request(req)
            assert b.energy_mah == a.energy_mah
            assert b.trip_time_s == a.trip_time_s
            assert b.cache_hit == a.cache_hit
            np.testing.assert_array_equal(
                b.profile.positions_m, a.profile.positions_m
            )
            np.testing.assert_array_equal(b.profile.speeds_ms, a.profile.speeds_ms)
        direct_stats = direct.stats_snapshot()
        routed_stats = routed.stats_snapshot()
        for field in ("requests", "cache_hits", "cache_misses", "errors"):
            assert getattr(routed_stats, field) == getattr(direct_stats, field)

    def test_unknown_corridor_raises_typed(self, router):
        with pytest.raises(UnknownCorridorError) as excinfo:
            router.request(_req("ev1", "route-66"))
        assert excinfo.value.corridor_id == "route-66"
        stats = router.router_stats()
        assert (stats.routed, stats.rejected) == (0, 1)

    def test_batch_preserves_order_with_in_place_errors(self, router):
        reqs = [
            _req("a", "us25"),
            _req("b", "route-66"),
            _req("c", "airport-loop"),
            _req("d", "elm-street"),
            _req("e", "us25"),
        ]
        outcomes = router.request_batch(reqs)
        assert [getattr(o, "vehicle_id", None) for o in outcomes] == [
            "a", None, "c", "d", "e",
        ]
        assert isinstance(outcomes[1], UnknownCorridorError)
        assert [getattr(o, "corridor_id", None) for o in outcomes] == [
            "us25", "route-66", "airport-loop", "elm-street", "us25",
        ]

    def test_per_shard_invariant_holds(self, router):
        departures = [10.0, 10.0, 40.0, 10.0]
        for cid in router.catalog.ids():
            for i, depart in enumerate(departures):
                router.request(_req(f"{cid}-{i}", cid, depart_s=depart))
        total_routed = 0
        for cid, service in router.per_corridor_services().items():
            stats = service.stats_snapshot()
            assert stats.requests == len(departures)
            assert (
                stats.requests
                == stats.cache_hits + stats.cache_misses + stats.errors
            )
            total_routed += stats.requests
        router_stats = router.router_stats()
        assert router_stats.routed == total_routed
        assert sum(router_stats.per_shard) == total_routed


class TestCorridorIsolation:
    def test_colliding_phase_and_budget_never_cross_corridors(self, router):
        """A plan cached for corridor A is never served for corridor B."""
        depart, budget = 30.0, 400.0
        first = router.request(_req("a", "us25", depart_s=depart,
                                    max_trip_time_s=budget))
        second = router.request(_req("b", "elm-street", depart_s=depart,
                                     max_trip_time_s=budget))
        # Identical phase and budget — but a different corridor must be a
        # cold miss with that corridor's own plan, not A's cached one.
        assert second.cache_hit is False
        assert second.energy_mah != first.energy_mah
        per = router.per_corridor_services()
        assert per["elm-street"].stats_snapshot().cache_hits == 0
        # Same corridor, same phase: the cache serves — warm hits exist,
        # they just never leak across the corridor boundary.
        third = router.request(_req("c", "us25", depart_s=depart,
                                    max_trip_time_s=budget))
        assert third.cache_hit is True
        assert third.energy_mah == first.energy_mah

    def test_coalesce_keys_are_corridor_prefixed(self, router):
        key_a = router.coalesce_key(_req("a", "us25"))
        key_b = router.coalesce_key(_req("b", "elm-street"))
        assert key_a[0] == "us25"
        assert key_b[0] == "elm-street"
        assert key_a[1:] == key_b[1:]  # identical inner phase key
        assert key_a != key_b  # ... yet never one flight
        assert router.coalesce_key(_req("c", "route-66")) is None

    def test_artifact_stores_are_per_corridor(self, router):
        for cid in router.catalog.ids():
            router.request(_req(f"ev-{cid}", cid))
        for runtime in router.catalog.built_runtimes():
            stats = runtime.store.stats()
            assert stats.misses == 1  # built its own corridor only
            assert stats.evictions == 0

    def test_capacity_one_stores_never_thrash_across_corridors(
        self, coarse_config
    ):
        """The old shared-store failure mode: interleaving N corridors
        through one capacity-1 store evicts every artifact every request.
        Per-corridor stores make the working set size 1 per corridor."""
        catalog = builtin_catalog(config=coarse_config, store_capacity=1)
        router = PlanRouter(catalog)
        for round_i in range(3):
            for cid in catalog.ids():
                router.request(_req(f"r{round_i}-{cid}", cid, depart_s=30.0))
        for runtime in catalog.built_runtimes():
            stats = runtime.store.stats()
            assert stats.misses == 1
            assert stats.evictions == 0

    def test_store_lru_eviction_never_serves_the_wrong_digest(
        self, catalog, coarse_config, vehicle
    ):
        """Even under eviction churn, a digest lookup rebuilds its own
        inputs — it can never resolve to another corridor's artifacts."""
        store = ArtifactStore(capacity=1, name="engine.store.churn")
        roads = [catalog.spec(cid).road for cid in catalog.ids()]
        grid = dict(
            v_step_ms=coarse_config.v_step_ms, s_step_m=coarse_config.s_step_m
        )
        for _ in range(2):
            for road in roads:
                artifacts = store.get_or_build(road, vehicle, **grid)
                assert artifacts.digest == corridor_digest(
                    road, vehicle, **grid
                )
        stats = store.stats()
        assert stats.evictions > 0  # churn actually happened
        assert stats.capacity == 1


class TestAggregates:
    def test_aggregate_stats_sum_over_corridors(self, router):
        for cid in router.catalog.ids():
            router.request(_req(f"a-{cid}", cid, depart_s=30.0))
            router.request(_req(f"b-{cid}", cid, depart_s=30.0))
        snapshot = router.stats_snapshot()
        assert snapshot.requests == 6
        assert snapshot.cache_hits == 3
        assert snapshot.cache_misses == 3
        plan, min_time, exact = router.cache_stats()
        assert plan.hits == snapshot.cache_hits
        assert plan.misses == snapshot.cache_misses
        assert router.plan_cache.stats().hits == plan.hits
        assert router.artifact_store.stats().misses == len(router.catalog)
        assert router.cache_enabled is True
        router.clear_cache()
        assert router.plan_cache.stats().size == 0

    def test_stats_document_breaks_down_per_corridor(self, router):
        import json

        for cid in router.catalog.ids():
            router.request(_req(f"a-{cid}", cid, depart_s=30.0))
        document = compose_stats_document(service=router)
        assert document["router"]["routed"] == 3
        assert document["router"]["shards"] == router.shards
        assert set(document["corridors"]) == set(router.catalog.ids())
        for section in document["corridors"].values():
            service = section["service"]
            assert service["requests"] == 1
            assert (
                service["requests"]
                == service["cache_hits"] + service["cache_misses"] + service["errors"]
            )
            assert section["artifact_store"]["misses"] == 1
        json.dumps(document)  # JSON-serializable end to end


class TestLanes:
    def test_laned_routing_matches_direct_outcomes(self, catalog, coarse_config):
        reference = PlanRouter(builtin_catalog(config=coarse_config))
        reqs = [
            _req(f"ev{i}", cid, depart_s=depart)
            for i, (cid, depart) in enumerate(
                [(c, d) for d in (10.0, 40.0, 10.0) for c in catalog.ids()]
            )
        ]
        expected = reference.request_batch(reqs)
        with PlanRouter(catalog, lane_workers=2) as laned:
            outcomes = laned.request_batch(reqs)
            lane_stats = laned.router_stats()
        assert lane_stats.routed == len(reqs)
        for got, want in zip(outcomes, expected):
            assert got.energy_mah == want.energy_mah
            assert got.corridor_id == want.corridor_id

    def test_lane_rejections_surface_typed(self, catalog):
        with PlanRouter(catalog, lane_workers=1) as laned:
            with pytest.raises(UnknownCorridorError):
                laned.request(_req("x", "route-66"))


class TestMultiCorridorFleet:
    def test_interleaved_fleet_with_zero_cross_corridor_hits(
        self, catalog
    ):
        router = PlanRouter(catalog)
        specs = [catalog.spec(cid) for cid in catalog.ids()]
        study = FleetStudy(
            router, corridors=specs, fleet_rate_vph=90.0, seed=5
        )
        result = study.run(duration_s=400.0, human_reference_sample=1)
        assert result.n_vehicles > 0
        assert result.n_failed == 0
        assert len(result.per_corridor) == 3
        assert {s.corridor_id for s in result.per_corridor} == set(catalog.ids())
        total = 0
        for corridor_slice in result.per_corridor:
            assert corridor_slice.service is not None
            stats = corridor_slice.service
            assert (
                stats.requests
                == stats.cache_hits + stats.cache_misses + stats.errors
            )
            # Zero cross-corridor leakage: every hit this corridor's
            # cache reports was served to a vehicle on this corridor.
            assert stats.requests == corridor_slice.n_vehicles
            total += corridor_slice.n_vehicles
        assert total == result.n_vehicles
        assert result.service.requests == total

    def test_fleet_requires_exactly_one_corridor_source(self, router, us25):
        with pytest.raises(ConfigurationError):
            FleetStudy(router)  # neither road nor corridors
        with pytest.raises(ConfigurationError):
            FleetStudy(router, road=us25, corridors=[])
        with pytest.raises(ConfigurationError):
            FleetStudy(router, corridors=[])
