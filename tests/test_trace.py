"""Human-trace synthesis and CSV IO."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trace.driver import DriverStyle, fast_driver, mild_driver, synthesize_trace
from repro.trace.io import load_trace_csv, save_trace_csv


class TestDriverStyles:
    def test_named_styles(self):
        assert mild_driver().name == "mild"
        assert fast_driver().name == "fast"

    def test_fast_more_aggressive_than_mild(self):
        mild, fast = mild_driver(), fast_driver()
        assert fast.accel_ms2 > mild.accel_ms2
        assert fast.cruise_frac >= mild.cruise_frac

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cruise_frac=0.0),
            dict(cruise_frac=1.5),
            dict(accel_ms2=-1.0),
            dict(imperfection=2.0),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="x", cruise_frac=0.8, accel_ms2=1.0, decel_ms2=2.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            DriverStyle(**base)


class TestSynthesis:
    @pytest.fixture(scope="class")
    def traces(self, us25):
        mild = synthesize_trace(us25, mild_driver(), arrival_rate_vph=100.0, depart_s=60.0, seed=4)
        fast = synthesize_trace(us25, fast_driver(), arrival_rate_vph=100.0, depart_s=60.0, seed=4)
        return mild, fast

    def test_both_cover_route(self, traces, us25):
        for trace in traces:
            assert trace.distance_m == pytest.approx(us25.length_m, abs=5.0)

    def test_fast_is_faster(self, traces):
        mild, fast = traces
        assert fast.duration_s < mild.duration_s

    def test_fast_reaches_higher_speed(self, traces):
        mild, fast = traces
        assert fast.speeds_ms.max() > mild.speeds_ms.max()

    def test_fast_consumes_more(self, traces):
        mild, fast = traces
        assert fast.energy().net_mah > mild.energy().net_mah

    def test_deterministic(self, us25):
        a = synthesize_trace(us25, fast_driver(), 100.0, depart_s=60.0, seed=4)
        b = synthesize_trace(us25, fast_driver(), 100.0, depart_s=60.0, seed=4)
        np.testing.assert_array_equal(a.speeds_ms, b.speeds_ms)


class TestTraceIo:
    def test_roundtrip(self, tmp_path, us25):
        trace = synthesize_trace(us25, fast_driver(), 50.0, depart_s=30.0, seed=1)
        path = tmp_path / "traces" / "fast.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        np.testing.assert_allclose(loaded.times_s, trace.times_s, atol=1e-3)
        np.testing.assert_allclose(loaded.speeds_ms, trace.speeds_ms, atol=1e-3)
        np.testing.assert_allclose(loaded.positions_m, trace.positions_m, atol=1e-3)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time_s,position_m,speed_ms\n0.0,0.0,1.0\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)


class TestTraceLoaderContract:
    """Loader failures surface as typed, located InputValidationError."""

    HEADER = "time_s,position_m,speed_ms\n"

    def test_missing_file_is_typed(self, tmp_path):
        from repro.errors import InputValidationError

        with pytest.raises(InputValidationError) as err:
            load_trace_csv(tmp_path / "absent.csv")
        assert err.value.source is not None and "absent.csv" in err.value.source

    def test_non_numeric_cell_names_the_row(self, tmp_path):
        from repro.errors import InputValidationError

        path = tmp_path / "junk.csv"
        path.write_text(self.HEADER + "0.0,0.0,1.0\n1.0,ten,1.0\n2.0,20.0,1.0\n")
        with pytest.raises(InputValidationError) as err:
            load_trace_csv(path)
        assert err.value.row == 1
        assert isinstance(err.value, ConfigurationError)

    def test_nan_row_rejected_strict_dropped_on_repair(self, tmp_path):
        from repro.errors import InputValidationError
        from repro.trace.io import load_trace_csv_repaired

        path = tmp_path / "nan.csv"
        path.write_text(self.HEADER + "0.0,0.0,1.0\n1.0,nan,1.0\n2.0,20.0,1.0\n")
        with pytest.raises(InputValidationError):
            load_trace_csv(path)
        trace, report = load_trace_csv_repaired(path)
        assert len(trace.times_s) == 2
        assert report and "row 1" in report.summary()
