"""The forecast-uncertainty extension: sweep runs, robustness, report."""

import pytest

from repro.experiments import ext_uncertainty
from repro.experiments.runner import EXPERIMENTS
from repro.resilience.ladder import TIER_QUEUE_DP_MPC

REDUCED = ext_uncertainty.UncertaintyConfig(
    severities=(0.0, 12.0),
    departures=(300.0,),
    seeds=(13,),
)


@pytest.fixture(scope="module")
def result():
    return ext_uncertainty.run(REDUCED)


class TestRun:
    def test_one_row_per_severity(self, result):
        assert [row.severity_s for row in result.rows] == [0.0, 12.0]

    def test_every_drive_completes(self, result):
        for row in result.rows:
            assert row.completed[0] == row.completed[1]

    def test_margin_grows_with_severity(self, result):
        margins = [row.chance_margin_s for row in result.rows]
        assert margins == sorted(margins)
        assert margins[-1] > 0.0

    def test_stochastic_never_misses_more_windows(self, result):
        # The headline robustness claim: at every faulted severity the
        # chance-constrained MPC arm misses no more queue-clearance
        # windows than the point-forecast arm.
        for row in result.rows:
            if row.severity_s > 0:
                assert row.stoch_stops <= row.point_stops

    def test_mpc_tier_serves_replans(self, result):
        # Cloud faults are injected in both arms; the stochastic arm's
        # degradation path is its local MPC cycle, not baseline DP.
        served = sum(
            row.stoch_tiers.get(TIER_QUEUE_DP_MPC, 0) for row in result.rows
        )
        assert served > 0

    def test_residual_summary_fitted(self, result):
        assert result.residual_std_s > 0.0
        assert result.sensitivity_s_per_vph > 0.0

    def test_artifacts_shared_across_arms(self, result):
        assert result.store is not None
        assert result.store.hits > 0

    def test_metrics_are_finite(self, result):
        for row in result.rows:
            assert row.point_energy_mah > 0
            assert row.stoch_energy_mah > 0
            assert row.point_time_s > 0
            assert row.stoch_time_s > 0


class TestReport:
    def test_report_renders_table_and_verdict(self, result):
        text = ext_uncertainty.report(result)
        assert "drift (s)" in text
        assert "missed no more windows" in text
        assert "every drive completed" in text
        assert "artifact store" in text

    def test_missed_windows_flagged(self):
        bad = ext_uncertainty.UncertaintyResult(
            rows=[
                ext_uncertainty.UncertaintyRow(
                    severity_s=12.0,
                    chance_margin_s=5.0,
                    point_stops=0,
                    stoch_stops=2,
                    point_energy_mah=100.0,
                    stoch_energy_mah=101.0,
                    point_time_s=300.0,
                    stoch_time_s=301.0,
                    point_tiers={},
                    stoch_tiers={},
                    completed=(2, 2),
                )
            ],
            residual_std_s=1.0,
            sensitivity_s_per_vph=0.01,
        )
        assert "MISSED MORE WINDOWS" in ext_uncertainty.report(bad)


class TestRegistration:
    def test_registered_in_runner(self):
        assert EXPERIMENTS["ext-uncertainty"] == (
            ext_uncertainty.run,
            ext_uncertainty.report,
        )
