"""Unit-conversion helpers."""

import math

import pytest

from repro import units


def test_kmh_roundtrip():
    assert units.ms_to_kmh(units.kmh_to_ms(72.0)) == pytest.approx(72.0)


def test_kmh_to_ms_known_value():
    assert units.kmh_to_ms(36.0) == pytest.approx(10.0)


def test_mph_to_ms_known_value():
    assert units.mph_to_ms(60.0) == pytest.approx(26.82, abs=0.01)


def test_joules_to_ah_one_amp_hour():
    # 1 Ah at 100 V is 360 kJ.
    assert units.joules_to_ah(360_000.0, 100.0) == pytest.approx(1.0)


def test_ah_to_joules_roundtrip():
    energy = 123_456.0
    volts = 399.0
    assert units.ah_to_joules(units.joules_to_ah(energy, volts), volts) == pytest.approx(energy)


def test_joules_to_mah_scales_ah():
    assert units.joules_to_mah(360_000.0, 100.0) == pytest.approx(1000.0)


def test_joules_to_ah_rejects_nonpositive_voltage():
    with pytest.raises(ValueError):
        units.joules_to_ah(1.0, 0.0)
    with pytest.raises(ValueError):
        units.ah_to_joules(1.0, -5.0)


def test_flow_rate_roundtrip():
    assert units.per_second_to_vehicles_per_hour(
        units.vehicles_per_hour_to_per_second(153.0)
    ) == pytest.approx(153.0)


def test_gravity_and_air_density_constants():
    assert units.GRAVITY == pytest.approx(9.81)
    assert units.AIR_DENSITY == pytest.approx(1.2)
