"""Property-based tests of the EV energy model (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams

MODEL = LongitudinalModel()

speeds = st.floats(min_value=0.1, max_value=40.0, allow_nan=False)
accels = st.floats(min_value=-1.5, max_value=2.5, allow_nan=False)
grades = st.floats(min_value=-0.1, max_value=0.1, allow_nan=False)


class TestForceProperties:
    @given(v=speeds, a=accels, g=grades)
    @settings(max_examples=200, deadline=None)
    def test_force_decomposition_is_additive_in_acceleration(self, v, a, g):
        base = MODEL.drive_force(v, 0.0, g)
        with_accel = MODEL.drive_force(v, a, g)
        assert with_accel - base == pytest.approx(MODEL.params.mass_kg * a, rel=1e-9)

    @given(v=speeds, a=accels)
    @settings(max_examples=200, deadline=None)
    def test_uphill_always_costs_more_than_downhill(self, v, a):
        up = MODEL.drive_force(v, a, 0.05)
        down = MODEL.drive_force(v, a, -0.05)
        assert up > down

    @given(v=speeds)
    @settings(max_examples=100, deadline=None)
    def test_cruise_force_positive_on_flat(self, v):
        assert MODEL.drive_force(v, 0.0) > 0.0


class TestConsumptionProperties:
    @given(v=speeds, a=accels, g=grades)
    @settings(max_examples=200, deadline=None)
    def test_electrical_never_beats_mechanical(self, v, a, g):
        """Efficiency < 1 in both directions: draw exceeds mechanical need,
        recuperation recovers less than the braking energy."""
        mech = MODEL.mechanical_power(v, a, g)
        elec = MODEL.electrical_power(v, a, g)
        if mech >= 0:
            assert elec >= mech
        else:
            assert 0.0 >= elec >= mech

    @given(v=speeds, a1=accels, a2=accels)
    @settings(max_examples=200, deadline=None)
    def test_consumption_monotone_in_acceleration(self, v, a1, a2):
        if a1 > a2:
            a1, a2 = a2, a1
        assert MODEL.consumption_rate_a(v, a1) <= MODEL.consumption_rate_a(v, a2) + 1e-12

    @given(v1=speeds, v2=speeds)
    @settings(max_examples=200, deadline=None)
    def test_cruise_consumption_monotone_in_speed(self, v1, v2):
        if v1 > v2:
            v1, v2 = v2, v1
        assert MODEL.consumption_rate_a(v1, 0.0) <= MODEL.consumption_rate_a(v2, 0.0) + 1e-12


class TestSegmentProperties:
    @given(
        v0=st.floats(min_value=0.5, max_value=25.0),
        v1=st.floats(min_value=0.5, max_value=25.0),
        ds=st.floats(min_value=20.0, max_value=500.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_speed_cycle_never_profits(self, v0, v1, ds):
        """Going v0 -> v1 -> v0 costs at least as much as the pure cruise
        component would suggest — regen never mints energy."""
        there = MODEL.segment_energy_j(v0, v1, ds)
        back = MODEL.segment_energy_j(v1, v0, ds)
        if not (np.isfinite(there) and np.isfinite(back)):
            return
        assert there + back > 0.0

    @given(
        v=st.floats(min_value=1.0, max_value=25.0),
        ds=st.floats(min_value=10.0, max_value=500.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_cruise_energy_scales_linearly_with_distance(self, v, ds):
        one = MODEL.segment_energy_j(v, v, ds)
        two = MODEL.segment_energy_j(v, v, 2.0 * ds)
        assert two == pytest.approx(2.0 * one, rel=1e-9)


class TestRegenBound:
    @given(
        v=st.floats(min_value=1.0, max_value=25.0),
        ds=st.floats(min_value=50.0, max_value=300.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_regen_bounded_by_kinetic_energy(self, v, ds):
        """Braking to rest can never return more than the kinetic energy."""
        energy = MODEL.segment_energy_j(v, 0.01, ds)
        if not np.isfinite(energy):
            return
        kinetic = 0.5 * MODEL.params.mass_kg * v * v
        assert energy >= -kinetic
