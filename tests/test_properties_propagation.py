"""Property-based tests of platoon propagation (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.light import TrafficLight
from repro.signal.propagation import (
    PeriodicRateProfile,
    robertson_dispersion,
    thinned,
    upstream_departure_profile,
)
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel

rates = st.floats(min_value=0.001, max_value=0.2)
reds = st.floats(min_value=10.0, max_value=50.0)
greens = st.floats(min_value=10.0, max_value=50.0)
travels = st.floats(min_value=10.0, max_value=300.0)


def make_model(red, green):
    light = TrafficLight(red_s=red, green_s=green)
    vm = VehicleMovementModel(light=light, v_min_ms=11.0, spacing_m=8.5, turn_ratio=0.8)
    return QueueLengthModel(vm)


class TestConservation:
    @given(rate=rates, red=reds, green=greens)
    @settings(max_examples=100, deadline=None)
    def test_departures_conserve_arrivals(self, rate, red, green):
        model = make_model(red, green)
        profile = upstream_departure_profile(model, rate, dt_s=0.5)
        assert profile.mean_vps() == pytest.approx(rate, rel=1e-6)

    @given(rate=rates, red=reds, green=greens, travel=travels)
    @settings(max_examples=60, deadline=None)
    def test_dispersion_conserves_flow(self, rate, red, green, travel):
        model = make_model(red, green)
        profile = upstream_departure_profile(model, rate, dt_s=0.5)
        dispersed = robertson_dispersion(profile, travel)
        assert dispersed.mean_vps() == pytest.approx(profile.mean_vps(), rel=1e-6)

    @given(rate=rates, red=reds, green=greens, travel=travels)
    @settings(max_examples=60, deadline=None)
    def test_dispersion_never_negative(self, rate, red, green, travel):
        model = make_model(red, green)
        profile = upstream_departure_profile(model, rate, dt_s=0.5)
        dispersed = robertson_dispersion(profile, travel)
        assert np.all(dispersed.rates_vps >= -1e-12)

    @given(rate=rates, red=reds, green=greens, travel=travels)
    @settings(max_examples=60, deadline=None)
    def test_dispersion_reduces_peak(self, rate, red, green, travel):
        model = make_model(red, green)
        profile = upstream_departure_profile(model, rate, dt_s=0.5)
        dispersed = robertson_dispersion(profile, travel)
        assert dispersed.rates_vps.max() <= profile.rates_vps.max() + 1e-9

    @given(
        rate=rates,
        red=reds,
        green=greens,
        fraction=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_thinning_scales_mean(self, rate, red, green, fraction):
        model = make_model(red, green)
        profile = upstream_departure_profile(model, rate, dt_s=0.5)
        cut = thinned(profile, fraction)
        assert cut.mean_vps() == pytest.approx(profile.mean_vps() * fraction, rel=1e-9)


class TestProfileLookup:
    @given(
        values=st.lists(st.floats(0.0, 5.0), min_size=2, max_size=40),
        t=st.floats(min_value=-500.0, max_value=500.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_lookup_periodic(self, values, t):
        from hypothesis import assume

        profile = PeriodicRateProfile(np.asarray(values), dt_s=1.0)
        # Times within float-epsilon of a sample boundary can round to
        # different buckets after adding a cycle; step off the edges.
        phase = t % profile.cycle_s
        assume(abs(phase - round(phase)) > 1e-6)
        assert profile(t) == profile(t + profile.cycle_s)

    @given(values=st.lists(st.floats(0.0, 5.0), min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_lookup_hits_samples(self, values):
        profile = PeriodicRateProfile(np.asarray(values), dt_s=1.0)
        for i, value in enumerate(values):
            assert profile(i + 0.5) == value
