"""End-to-end integration: predict -> window -> plan -> simulate -> meter."""

import numpy as np
import pytest

from repro.core.constraints import check_profile
from repro.core.planner import BaselineDpPlanner, PlannerConfig, QueueAwareDpPlanner
from repro.sim.scenario import Us25Scenario
from repro.traffic import (
    SAEPredictor,
    VolumeGenerator,
    train_test_split_by_hour,
)
from repro.units import vehicles_per_hour_to_per_second


@pytest.fixture(scope="module")
def pipeline(us25, coarse_config):
    """The full paper pipeline wired together once."""
    series = VolumeGenerator(seed=7).generate(35)
    train, test = train_test_split_by_hour(series, test_hours=72, window=12)
    sae = SAEPredictor(
        hidden_sizes=(16, 8), pretrain_epochs=8, finetune_epochs=60, seed=0
    ).fit(train.features, train.targets)
    forecast_vph = float(np.mean(test.denormalize(sae.predict(test.features[:3]))))
    rate = vehicles_per_hour_to_per_second(max(forecast_vph, 30.0))
    planner = QueueAwareDpPlanner(us25, arrival_rates=rate, config=coarse_config)
    return planner, rate, forecast_vph


class TestFullPipeline:
    def test_forecast_is_sane(self, pipeline):
        _, _, forecast_vph = pipeline
        assert 10.0 < forecast_vph < 1500.0

    def test_plan_from_forecast_is_feasible(self, pipeline, us25):
        planner, _, _ = pipeline
        solution = planner.plan(start_time_s=0.0, max_trip_time_s=330.0)
        assert check_profile(solution.profile, us25).ok
        assert solution.all_windows_hit

    def test_plan_survives_simulation(self, pipeline, us25):
        planner, _, forecast_vph = pipeline
        solution = planner.plan(start_time_s=100.0, max_trip_time_s=330.0)
        scenario = Us25Scenario(
            road=us25, arrival_rate_vph=forecast_vph, warmup_s=100.0, seed=3
        )
        result = scenario.drive(solution.profile, depart_s=100.0)
        trace = result.ev_trace
        assert trace.positions_m[-1] >= us25.length_m - 1.0
        # Derived trip time stays within a modest envelope of the plan.
        assert trace.duration_s <= solution.trip_time_s + 60.0

    def test_derived_energy_close_to_planned(self, pipeline, us25):
        planner, _, forecast_vph = pipeline
        solution = planner.plan(start_time_s=100.0, max_trip_time_s=330.0)
        scenario = Us25Scenario(
            road=us25, arrival_rate_vph=forecast_vph, warmup_s=100.0, seed=3
        )
        result = scenario.drive(solution.profile, depart_s=100.0)
        derived = result.ev_trace.energy().net_mah
        assert derived == pytest.approx(solution.energy_mah, rel=0.25)


class TestPlannerComparison:
    def test_queue_aware_windows_are_stricter(self, us25, coarse_config):
        rate = vehicles_per_hour_to_per_second(400.0)
        baseline = BaselineDpPlanner(us25, config=coarse_config)
        proposed = QueueAwareDpPlanner(us25, arrival_rates=rate, config=coarse_config)
        base_fast = baseline.min_trip_time(0.0)
        prop_fast = proposed.min_trip_time(0.0)
        # The queue-free windows are subsets of the green windows, so the
        # fastest queue-aware trip can never beat the fastest green trip.
        assert prop_fast >= base_fast - 1e-6

    def test_both_planners_feasible_across_cycle(self, us25, coarse_config):
        rate = vehicles_per_hour_to_per_second(200.0)
        baseline = BaselineDpPlanner(us25, config=coarse_config)
        proposed = QueueAwareDpPlanner(us25, arrival_rates=rate, config=coarse_config)
        for depart in (0.0, 15.0, 30.0, 45.0):
            for planner in (baseline, proposed):
                solution = planner.plan(start_time_s=depart, max_trip_time_s=400.0)
                assert solution.all_windows_hit
