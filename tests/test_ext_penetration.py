"""Penetration-study extension (fast config)."""

import math

import pytest

from repro.experiments import ext_penetration


@pytest.fixture(scope="module")
def result():
    config = ext_penetration.PenetrationConfig(
        n_evs=4, penetrations=(0.0, 1.0), background_vph=150.0
    )
    return ext_penetration.run(config)


class TestExtPenetration:
    def test_row_per_penetration(self, result):
        assert [r[0] for r in result.rows] == [0.0, 1.0]

    def test_group_means_defined_where_members_exist(self, result):
        zero, full = result.rows
        assert math.isnan(zero[1]) and not math.isnan(zero[2])
        assert not math.isnan(full[1]) and math.isnan(full[2])

    def test_full_penetration_saves_energy(self, result):
        zero, full = result.rows
        assert full[3] < zero[3]

    def test_report_renders(self, result):
        text = ext_penetration.report(result)
        assert "penetration" in text and "100%" in text
