"""Wire-layer codec: bit-exact round trips and strict schema rejection."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import wire
from repro.cloud.messages import DEFAULT_CORRIDOR_ID, PlanRequest, PlanResponse
from repro.core.profile import VelocityProfile
from repro.errors import InputValidationError, WireProtocolError

finite_double = st.floats(allow_nan=False, allow_infinity=False, width=64)
speed = st.floats(min_value=0.5, max_value=30.0, width=64)
dwell = st.floats(min_value=0.0, max_value=120.0, width=64)


@st.composite
def profiles(draw):
    """Random valid profiles: increasing positions, positive speeds."""
    n = draw(st.integers(min_value=2, max_value=8))
    steps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=500.0, width=64),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    positions = [0.0]
    for step in steps:
        positions.append(positions[-1] + step)
    speeds = draw(st.lists(speed, min_size=n, max_size=n))
    dwells = draw(st.lists(dwell, min_size=n, max_size=n))
    start = draw(st.floats(min_value=0.0, max_value=1e6, width=64))
    return VelocityProfile(
        positions_m=positions, speeds_ms=speeds, dwell_s=dwells, start_time_s=start
    )


@st.composite
def requests(draw):
    budget = draw(st.none() | st.floats(min_value=1.0, max_value=1e5, width=64))
    return PlanRequest(
        vehicle_id=draw(st.text(min_size=1, max_size=12)),
        depart_s=draw(st.floats(min_value=0.0, max_value=1e6, width=64)),
        max_trip_time_s=budget,
        position_m=draw(st.floats(min_value=0.0, max_value=1e5, width=64)),
        speed_ms=draw(st.floats(min_value=0.0, max_value=30.0, width=64)),
        minimize=draw(st.sampled_from(["energy", "time"])),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(req=requests())
    def test_request_roundtrip_bit_exact(self, req):
        back = wire.roundtrip_request(req)
        assert back == req
        # Canonical encoding: equal messages -> equal bytes.
        assert wire.encode_request(back) == wire.encode_request(req)

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(), energy=finite_double, hit=st.booleans())
    def test_response_roundtrip_bit_exact(self, profile, energy, hit):
        resp = PlanResponse(
            vehicle_id="ev1",
            profile=profile,
            energy_mah=energy,
            trip_time_s=123.456,
            cache_hit=hit,
            compute_time_s=0.25,
        )
        back = wire.roundtrip_response(resp)
        assert back.vehicle_id == resp.vehicle_id
        # Bit-exact float round trips, including the arrays.
        assert back.energy_mah == resp.energy_mah
        np.testing.assert_array_equal(back.profile.positions_m, profile.positions_m)
        np.testing.assert_array_equal(back.profile.speeds_ms, profile.speeds_ms)
        np.testing.assert_array_equal(back.profile.dwell_s, profile.dwell_s)
        assert back.profile.start_time_s == profile.start_time_s
        assert wire.encode_response(back) == wire.encode_response(resp)

    def test_negative_zero_and_tiny_floats_survive(self):
        req = PlanRequest(vehicle_id="z", depart_s=0.0, speed_ms=5e-324)
        back = wire.roundtrip_request(req)
        assert math.copysign(1.0, back.position_m) == math.copysign(1.0, 0.0)
        assert back.speed_ms == 5e-324

    def test_profile_none_encodes_as_null(self):
        resp = PlanResponse(
            vehicle_id="ev1",
            profile=None,
            energy_mah=0.0,
            trip_time_s=10.0,
            cache_hit=False,
            compute_time_s=0.0,
        )
        payload = json.loads(wire.encode_response(resp))
        assert payload["profile"] is None
        assert wire.roundtrip_response(resp).profile is None


class TestRejection:
    def _request_payload(self, **overrides):
        payload = wire.request_to_dict(PlanRequest(vehicle_id="a", depart_s=10.0))
        payload.update(overrides)
        return payload

    def test_unknown_version_rejected(self):
        payload = self._request_payload(wire_version=wire.WIRE_VERSION + 1)
        with pytest.raises(WireProtocolError) as excinfo:
            wire.request_from_dict(payload)
        assert excinfo.value.version == wire.WIRE_VERSION + 1

    def test_wrong_kind_rejected(self):
        payload = self._request_payload(kind="plan_response")
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)

    def test_missing_and_unknown_keys_rejected(self):
        payload = self._request_payload()
        del payload["depart_s"]
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)
        payload = self._request_payload(surprise=1)
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)

    def test_malformed_json_rejected(self):
        with pytest.raises(WireProtocolError):
            wire.decode_request(b"{not json")
        with pytest.raises(WireProtocolError):
            wire.decode_request(b"\xff\xfe")
        with pytest.raises(WireProtocolError):
            wire.decode_request(b"[1, 2, 3]")

    def test_nan_inf_rejected_both_directions(self):
        # Decode: the NaN/Infinity JSON extensions are refused.
        payload = self._request_payload()
        text = json.dumps(payload).replace("10.0", "NaN")
        with pytest.raises(WireProtocolError):
            wire.decode_request(text)
        # Dict path: a NaN float field is refused.
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(self._request_payload(depart_s=float("nan")))
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(self._request_payload(speed_ms=float("inf")))

    def test_mistyped_fields_rejected(self):
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(self._request_payload(vehicle_id=7))
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(self._request_payload(depart_s="10"))
        with pytest.raises(WireProtocolError):
            # bool is not an acceptable number.
            wire.request_from_dict(self._request_payload(depart_s=True))

    def test_contract_violations_surface_as_wire_errors(self):
        payload = self._request_payload(minimize="comfort")
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)
        payload = self._request_payload(depart_s=-5.0)
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)

    def test_wire_error_is_an_input_validation_error(self):
        # The guard layer's handlers catch wire errors unchanged.
        assert issubclass(WireProtocolError, InputValidationError)

    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=64))
    def test_random_bytes_never_escape_the_typed_error(self, blob):
        try:
            wire.decode_request(blob)
        except WireProtocolError:
            pass

    def test_bad_profile_arrays_rejected(self):
        good = wire.profile_to_dict(
            VelocityProfile(
                positions_m=[0.0, 100.0],
                speeds_ms=[5.0, 6.0],
                dwell_s=[0.0, 0.0],
                start_time_s=0.0,
            )
        )
        bad = dict(good, positions_m=[100.0, 0.0])  # non-increasing
        with pytest.raises(WireProtocolError):
            wire.profile_from_dict(bad)
        bad = dict(good, speeds_ms=[5.0, float("nan")])
        with pytest.raises(WireProtocolError):
            wire.profile_from_dict(bad)
        bad = dict(good, speeds_ms="fast")
        with pytest.raises(WireProtocolError):
            wire.profile_from_dict(bad)


class TestVersioning:
    """Version-2 corridor routing with version-1 backward compatibility."""

    def _v1_payload(self, **overrides):
        payload = wire.request_to_dict(
            PlanRequest(vehicle_id="a", depart_s=10.0), version=1
        )
        payload.update(overrides)
        return payload

    def test_current_version_and_support_window(self):
        assert wire.WIRE_VERSION == 2
        assert wire.SUPPORTED_WIRE_VERSIONS == (1, 2)

    def test_v1_request_has_no_corridor_key(self):
        assert "corridor_id" not in self._v1_payload()
        payload = wire.request_to_dict(
            PlanRequest(vehicle_id="a", depart_s=10.0)
        )
        assert payload["corridor_id"] == DEFAULT_CORRIDOR_ID

    def test_v1_request_decodes_to_default_corridor(self):
        req = wire.request_from_dict(self._v1_payload())
        assert req.corridor_id == DEFAULT_CORRIDOR_ID
        req = wire.request_from_dict(
            self._v1_payload(), default_corridor_id="elm-street"
        )
        assert req.corridor_id == "elm-street"

    def test_v1_payload_carrying_corridor_id_rejected(self):
        # corridor_id is a v2 key; a v1 frame smuggling it is off-schema.
        payload = self._v1_payload(corridor_id="us25")
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)

    def test_v2_payload_missing_corridor_id_rejected(self):
        payload = wire.request_to_dict(PlanRequest(vehicle_id="a", depart_s=1.0))
        del payload["corridor_id"]
        with pytest.raises(WireProtocolError):
            wire.request_from_dict(payload)

    def test_v1_cannot_encode_a_nondefault_corridor(self):
        # Downgrading would silently drop the routing key — refuse typed.
        req = PlanRequest(vehicle_id="a", depart_s=1.0, corridor_id="elm-street")
        with pytest.raises(WireProtocolError):
            wire.encode_request(req, version=1)
        # ... unless that corridor IS the configured default (no loss).
        data = wire.encode_request(
            req, version=1, default_corridor_id="elm-street"
        )
        back = wire.decode_request(data, default_corridor_id="elm-street")
        assert back == req

    def test_unsupported_encode_version_rejected(self):
        req = PlanRequest(vehicle_id="a", depart_s=1.0)
        with pytest.raises(WireProtocolError):
            wire.encode_request(req, version=wire.WIRE_VERSION + 1)

    @settings(max_examples=40, deadline=None)
    @given(req=requests())
    def test_v1_roundtrip_bit_exact_for_default_corridor(self, req):
        data = wire.encode_request(req, version=1)
        back = wire.decode_request(data)
        assert back == req
        assert wire.encode_request(back, version=1) == data

    @settings(max_examples=40, deadline=None)
    @given(
        req=requests(),
        corridor=st.text(min_size=1, max_size=16),
    )
    def test_v2_roundtrip_bit_exact_for_any_corridor(self, req, corridor):
        import dataclasses

        req = dataclasses.replace(req, corridor_id=corridor)
        back = wire.roundtrip_request(req)
        assert back == req
        assert back.corridor_id == corridor

    def test_v1_response_roundtrip(self):
        resp = PlanResponse(
            vehicle_id="ev1",
            profile=None,
            energy_mah=1.5,
            trip_time_s=10.0,
            cache_hit=False,
            compute_time_s=0.0,
        )
        payload = json.loads(wire.encode_response(resp, version=1))
        assert payload["wire_version"] == 1
        assert "corridor_id" not in payload
        back = wire.decode_response(wire.encode_response(resp, version=1))
        assert back.corridor_id == DEFAULT_CORRIDOR_ID
        nondefault = PlanResponse(
            vehicle_id="ev1",
            profile=None,
            energy_mah=1.5,
            trip_time_s=10.0,
            cache_hit=False,
            compute_time_s=0.0,
            corridor_id="airport-loop",
        )
        with pytest.raises(WireProtocolError):
            wire.encode_response(nondefault, version=1)

    def test_decode_message_versioned_reports_the_dialect(self):
        req = PlanRequest(vehicle_id="a", depart_s=1.0)
        for version in wire.SUPPORTED_WIRE_VERSIONS:
            kind, message, got = wire.decode_message_versioned(
                wire.encode_request(req, version=version)
            )
            assert (kind, got) == (wire.REQUEST_KIND, version)
            assert message == req
        kind, message = wire.decode_message(wire.encode_request(req))
        assert kind == wire.REQUEST_KIND

    def test_health_and_stats_frames_speak_both_dialects(self):
        for version in wire.SUPPORTED_WIRE_VERSIONS:
            for blob in (
                wire.encode_health_request(version=version),
                wire.encode_stats_request(version=version),
                wire.encode_stats_response({"schema": "x"}, version=version),
            ):
                payload = json.loads(blob)
                assert payload["wire_version"] == version
                wire.decode_message(blob)  # both decode under one window
