"""Loop detectors: crossing counts and measured flows."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment, SpeedLimitZone
from repro.sim.detectors import DetectorBank, LoopDetector
from repro.sim.simulator import CorridorSimulator
from repro.traffic.arrival import PoissonArrivalProcess
from repro.traffic.volume import VolumeSeries


class TestLoopDetector:
    def test_counts_forward_crossing(self):
        det = LoopDetector(position_m=100.0, window_s=60.0)
        det.observe(1.0, "a", 90.0)
        det.observe(2.0, "a", 105.0)
        assert det.count_in_window(0) == 1

    def test_no_count_without_crossing(self):
        det = LoopDetector(position_m=100.0)
        det.observe(1.0, "a", 50.0)
        det.observe(2.0, "a", 80.0)
        assert det.count_in_window(0) == 0

    def test_each_vehicle_counted_once(self):
        det = LoopDetector(position_m=100.0)
        det.observe(1.0, "a", 90.0)
        det.observe(2.0, "a", 105.0)
        det.observe(3.0, "a", 120.0)
        assert det.count_in_window(0) == 1

    def test_windows_separate_counts(self):
        det = LoopDetector(position_m=100.0, window_s=10.0)
        det.observe(1.0, "a", 90.0)
        det.observe(2.0, "a", 105.0)
        det.observe(11.0, "b", 90.0)
        det.observe(12.0, "b", 105.0)
        assert det.count_in_window(0) == 1
        assert det.count_in_window(1) == 1

    def test_flow_series_scaling(self):
        det = LoopDetector(position_m=10.0, window_s=60.0)
        for i, vid in enumerate(("a", "b", "c")):
            det.observe(1.0 + i, vid, 5.0)
            det.observe(2.0 + i, vid, 15.0)
        series = det.flow_series(1)
        assert series.volumes_vph[0] == pytest.approx(3 * 60.0)

    def test_first_observation_never_counts(self):
        det = LoopDetector(position_m=100.0)
        det.observe(1.0, "a", 150.0)  # appeared beyond the loop
        assert det.count_in_window(0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoopDetector(position_m=-1.0)
        with pytest.raises(ConfigurationError):
            LoopDetector(position_m=1.0, window_s=0.0)
        with pytest.raises(ConfigurationError):
            LoopDetector(position_m=1.0).flow_series(0)
        with pytest.raises(ConfigurationError):
            DetectorBank([])


class TestDetectorBankInSimulation:
    def test_measured_flow_matches_configured_demand(self):
        road = RoadSegment(
            name="open road",
            length_m=2000.0,
            zones=[SpeedLimitZone(0.0, 2000.0, v_max_ms=15.0)],
        )
        demand_vph = 400.0
        series = VolumeSeries(np.full(2, demand_vph))
        arrivals = PoissonArrivalProcess(series, seed=3).sample(0.0, 1800.0)
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=4)
        bank = DetectorBank([LoopDetector(position_m=1000.0, window_s=300.0)])
        while sim.time_s < 1800.0:
            sim.step()
            bank.sample(sim)
        measured = bank.detectors[0].mean_flow_vph(5)
        assert measured == pytest.approx(demand_vph, rel=0.3)

    def test_downstream_detector_sees_turn_thinned_flow(self, us25):
        demand_vph = 500.0
        series = VolumeSeries(np.full(2, demand_vph))
        arrivals = PoissonArrivalProcess(series, seed=5).sample(0.0, 2400.0)
        sim = CorridorSimulator(us25, arrivals_s=arrivals, seed=6)
        bank = DetectorBank(
            [
                LoopDetector(position_m=1500.0, window_s=600.0),
                LoopDetector(position_m=2500.0, window_s=600.0),
            ]
        )
        while sim.time_s < 2400.0:
            sim.step()
            bank.sample(sim)
        upstream = bank.detectors[0].mean_flow_vph(4)
        downstream = bank.detectors[1].mean_flow_vph(4)
        # The first signal's 76 % straight-through ratio thins the flow.
        assert downstream < upstream
        assert downstream == pytest.approx(upstream * 0.7636, rel=0.3)
