"""Platoon propagation: departure profiles and Robertson dispersion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight
from repro.signal.propagation import (
    PeriodicRateProfile,
    platoon_aware_windows,
    robertson_dispersion,
    thinned,
    upstream_departure_profile,
)
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture
def model():
    light = TrafficLight(red_s=30.0, green_s=30.0)
    vm = VehicleMovementModel(light=light, v_min_ms=11.11, spacing_m=8.5, turn_ratio=0.8)
    return QueueLengthModel(vm)


class TestPeriodicRateProfile:
    def test_periodic_lookup(self):
        profile = PeriodicRateProfile(np.asarray([1.0, 2.0, 3.0, 4.0]), dt_s=1.0)
        assert profile(0.5) == 1.0
        assert profile(3.5) == 4.0
        assert profile(4.5) == 1.0  # wrapped
        assert profile(-0.5) == 4.0  # negative wraps too

    def test_offset_shifts_phase(self):
        profile = PeriodicRateProfile(np.asarray([1.0, 2.0]), dt_s=1.0, offset_s=1.0)
        assert profile(1.0) == 1.0
        assert profile(2.0) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicRateProfile(np.asarray([]), dt_s=1.0)
        with pytest.raises(ConfigurationError):
            PeriodicRateProfile(np.asarray([1.0]), dt_s=0.0)
        with pytest.raises(ConfigurationError):
            PeriodicRateProfile(np.asarray([-1.0]), dt_s=1.0)


class TestDepartureProfile:
    def test_silent_during_red(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        light = model.light
        for i, rate in enumerate(profile.rates_vps):
            t = (i + 0.5) * profile.dt_s
            if light.is_red(t):
                assert rate == 0.0

    def test_conserves_flow(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        assert profile.mean_vps() == pytest.approx(RATE, rel=1e-6)

    def test_peaks_at_green_onset(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        peak_index = int(np.argmax(profile.rates_vps))
        peak_time = (peak_index + 0.5) * profile.dt_s
        assert 30.0 <= peak_time <= 40.0
        assert profile.rates_vps.max() > 3.0 * RATE

    def test_zero_arrivals_zero_departures(self, model):
        profile = upstream_departure_profile(model, 0.0)
        assert profile.rates_vps.max() == 0.0


class TestRobertsonDispersion:
    def test_conserves_mean_flow(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        dispersed = robertson_dispersion(profile, travel_time_s=90.0)
        assert dispersed.mean_vps() == pytest.approx(profile.mean_vps(), rel=1e-6)

    def test_smooths_the_platoon(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        dispersed = robertson_dispersion(profile, travel_time_s=90.0)
        assert dispersed.rates_vps.max() < 0.2 * profile.rates_vps.max()
        assert dispersed.rates_vps.min() > 0.0

    def test_longer_links_disperse_more(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        near = robertson_dispersion(profile, travel_time_s=30.0)
        far = robertson_dispersion(profile, travel_time_s=200.0)
        assert far.rates_vps.max() < near.rates_vps.max()

    def test_validation(self, model):
        profile = upstream_departure_profile(model, RATE)
        with pytest.raises(ConfigurationError):
            robertson_dispersion(profile, travel_time_s=0.0)
        with pytest.raises(ConfigurationError):
            robertson_dispersion(profile, travel_time_s=10.0, beta=0.0)


class TestThinning:
    def test_scales_rates(self, model):
        profile = upstream_departure_profile(model, RATE)
        cut = thinned(profile, 0.5)
        np.testing.assert_allclose(cut.rates_vps, profile.rates_vps * 0.5)

    def test_validation(self, model):
        profile = upstream_departure_profile(model, RATE)
        with pytest.raises(ConfigurationError):
            thinned(profile, 0.0)
        with pytest.raises(ConfigurationError):
            thinned(profile, 1.5)


class TestPlatoonAwareWindows:
    def test_windows_inside_green(self, model):
        profile = upstream_departure_profile(model, RATE, dt_s=0.5)
        arr = thinned(robertson_dispersion(profile, 90.0), 0.8)
        windows = platoon_aware_windows(model, arr, start_s=0.0, horizon_s=180.0)
        assert windows
        for window in windows:
            mid = 0.5 * (window.start_s + window.end_s)
            assert model.light.is_green(mid)

    def test_zero_arrivals_full_green(self, model):
        windows = platoon_aware_windows(model, lambda t: 0.0, 0.0, 120.0)
        total = sum(w.duration_s for w in windows)
        assert total == pytest.approx(60.0, abs=2.0)  # two full greens

    def test_heavy_platoons_shrink_windows(self, model):
        light_arr = lambda t: vehicles_per_hour_to_per_second(100.0)
        heavy_arr = lambda t: vehicles_per_hour_to_per_second(900.0)
        light_total = sum(
            w.duration_s
            for w in platoon_aware_windows(model, light_arr, 0.0, 180.0)
        )
        heavy_total = sum(
            w.duration_s
            for w in platoon_aware_windows(model, heavy_arr, 0.0, 180.0)
        )
        assert heavy_total < light_total
