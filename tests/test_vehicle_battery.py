"""Battery-pack coulomb counting."""

import pytest

from repro.errors import ConfigurationError
from repro.vehicle.battery import BatteryPack
from repro.vehicle.params import sony_vtc4_pack


@pytest.fixture
def pack():
    return BatteryPack(sony_vtc4_pack(), initial_soc=0.8)


class TestBatteryPack:
    def test_initial_state(self, pack):
        assert pack.soc == pytest.approx(0.8)
        assert pack.consumed_ah == 0.0
        assert pack.regenerated_ah == 0.0

    def test_draw_reduces_charge(self, pack):
        pack.draw(current_a=36.0, duration_s=100.0)  # 1 Ah
        assert pack.consumed_ah == pytest.approx(1.0)
        assert pack.charge_ah == pytest.approx(0.8 * 46.2 - 1.0)

    def test_regen_increases_charge(self, pack):
        pack.draw(current_a=-36.0, duration_s=100.0)
        assert pack.regenerated_ah == pytest.approx(1.0)
        assert pack.net_consumed_ah == pytest.approx(-1.0)

    def test_net_consumed_mixes_draw_and_regen(self, pack):
        pack.draw(36.0, 100.0)
        pack.draw(-36.0, 50.0)
        assert pack.net_consumed_ah == pytest.approx(0.5)
        assert pack.net_consumed_mah == pytest.approx(500.0)

    def test_regen_clips_at_full(self):
        pack = BatteryPack(sony_vtc4_pack(), initial_soc=1.0)
        pack.draw(-360.0, 100.0)  # would add 10 Ah
        assert pack.soc == pytest.approx(1.0)
        assert pack.regenerated_ah == pytest.approx(0.0)

    def test_over_discharge_raises(self):
        pack = BatteryPack(sony_vtc4_pack(), initial_soc=0.01)
        with pytest.raises(RuntimeError):
            pack.draw(current_a=46.2 * 36.0, duration_s=100.0)

    def test_negative_duration_rejected(self, pack):
        with pytest.raises(ValueError):
            pack.draw(1.0, -1.0)

    def test_reset(self, pack):
        pack.draw(36.0, 100.0)
        pack.reset(soc=0.5)
        assert pack.soc == pytest.approx(0.5)
        assert pack.consumed_ah == 0.0

    @pytest.mark.parametrize("soc", [-0.1, 1.1])
    def test_invalid_soc_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            BatteryPack(sony_vtc4_pack(), initial_soc=soc)
        pack = BatteryPack(sony_vtc4_pack())
        with pytest.raises(ConfigurationError):
            pack.reset(soc)
