"""Batched solving: bit-identity of the vectorized paths vs serial.

PR 6's throughput comes from stacking same-corridor DP programs along a
leading axis (``DpSolver.solve_batch``) and serving whole request windows
through one batched flow (``CloudPlannerService.request_batch``).  The
speed is only usable because every batched artifact is **bit-identical**
to what the serial code path produces — these tests pin that contract at
each layer: planner batch, min-time calibration batch, and the service's
flow serving (cache economics included).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudPlannerService, PlanRequest, PlanResponse
from repro.core.planner import QueueAwareDpPlanner
from repro.errors import InfeasibleProblemError, PlanningFailedError
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture
def planner(us25, coarse_config):
    return QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)


def _assert_same_solution(got, want):
    assert got.energy_j == want.energy_j
    assert got.trip_time_s == want.trip_time_s
    assert np.array_equal(got.profile.positions_m, want.profile.positions_m)
    assert np.array_equal(got.profile.speeds_ms, want.profile.speeds_ms)
    assert np.array_equal(got.profile.arrival_times_s, want.profile.arrival_times_s)
    assert got.signal_arrivals == want.signal_arrivals
    assert got.windows_hit == want.windows_hit


class TestPlanBatch:
    def test_plan_batch_matches_serial_plans(self, planner):
        specs = [(100.0, None), (137.0, 320.0), (260.0, None), (100.0, 320.0)]
        batch = planner.plan_batch(specs)
        for spec, got in zip(specs, batch):
            want = planner.plan(start_time_s=spec[0], max_trip_time_s=spec[1])
            _assert_same_solution(got, want)

    def test_plan_batch_minimize_time_matches_serial(self, planner):
        specs = [(100.0, None), (137.0, None)]
        batch = planner.plan_batch(specs, minimize="time")
        for spec, got in zip(specs, batch):
            want = planner.plan(start_time_s=spec[0], minimize="time")
            _assert_same_solution(got, want)

    def test_plan_batch_surfaces_per_problem_infeasibility(self, planner):
        """A hopeless cap fails its own slot without poisoning the batch."""
        specs = [(100.0, None), (100.0, 30.0), (137.0, 320.0)]
        batch = planner.plan_batch(specs)
        assert isinstance(batch[1], InfeasibleProblemError)
        with pytest.raises(InfeasibleProblemError):
            planner.plan(start_time_s=100.0, max_trip_time_s=30.0)
        _assert_same_solution(batch[0], planner.plan(start_time_s=100.0))
        _assert_same_solution(
            batch[2], planner.plan(start_time_s=137.0, max_trip_time_s=320.0)
        )

    def test_min_trip_time_batch_matches_serial(self, planner):
        departures = [100.0, 137.0, 260.0]
        batch = planner.min_trip_time_batch(departures)
        for depart, got in zip(departures, batch):
            assert got == planner.min_trip_time(depart)


class TestRequestBatch:
    @staticmethod
    def _service(us25, coarse_config):
        planner = QueueAwareDpPlanner(
            us25, arrival_rates=RATE, config=coarse_config
        )
        return CloudPlannerService(planner)

    def test_request_batch_replays_the_serial_story(self, us25, coarse_config):
        """One flow-served window == the same requests served one by one.

        Covers the budget-less fleet path end to end: min-time floors,
        budget binning, cold solves, and warm phase-shifted cache hits —
        responses *and* counters must match the serial service exactly.
        """
        departs = [100.0, 111.0, 160.0, 123.0, 171.0, 280.0]  # phase repeats
        requests = [
            PlanRequest(f"ev{i}", depart_s=d) for i, d in enumerate(departs)
        ]

        serial_service = self._service(us25, coarse_config)
        serial = []
        for req in requests:
            try:
                serial.append(serial_service.request(req))
            except PlanningFailedError as exc:
                serial.append(exc)

        batch_service = self._service(us25, coarse_config)
        batch = batch_service.request_batch(requests)

        for got, want in zip(batch, serial):
            if isinstance(want, Exception):
                assert isinstance(got, Exception)
                assert str(got) == str(want)
                continue
            assert isinstance(got, PlanResponse)
            assert got.vehicle_id == want.vehicle_id
            assert got.energy_mah == want.energy_mah
            assert got.trip_time_s == want.trip_time_s
            assert got.cache_hit == want.cache_hit
            assert np.array_equal(
                got.profile.positions_m, want.profile.positions_m
            )
            assert np.array_equal(got.profile.speeds_ms, want.profile.speeds_ms)

        # Cache economics are replayed, not re-derived: same books.
        assert batch_service.stats.requests == serial_service.stats.requests
        assert batch_service.stats.cache_hits == serial_service.stats.cache_hits
        assert (
            batch_service.stats.cache_misses == serial_service.stats.cache_misses
        )
        assert batch_service.stats.errors == serial_service.stats.errors
        assert sorted(batch_service.plan_cache.keys()) == sorted(
            serial_service.plan_cache.keys()
        )

    def test_request_batch_captures_failures_in_place(self, us25, coarse_config):
        service = self._service(us25, coarse_config)
        requests = [
            PlanRequest("ok", depart_s=100.0, max_trip_time_s=320.0),
            PlanRequest("doomed", depart_s=100.0, max_trip_time_s=5.0),
            PlanRequest("also-ok", depart_s=160.0, max_trip_time_s=320.0),
        ]
        outcomes = service.request_batch(requests)
        assert isinstance(outcomes[0], PlanResponse)
        assert isinstance(outcomes[1], PlanningFailedError)
        assert outcomes[1].vehicle_id == "doomed"
        assert isinstance(outcomes[1].__cause__, InfeasibleProblemError)
        assert isinstance(outcomes[2], PlanResponse)
        assert outcomes[2].cache_hit  # same phase+budget as the first

    def test_singleton_batch_equals_request(self, us25, coarse_config):
        req = PlanRequest("solo", depart_s=100.0)
        want = self._service(us25, coarse_config).request(req)
        (got,) = self._service(us25, coarse_config).request_batch([req])
        assert got.energy_mah == want.energy_mah
        assert got.trip_time_s == want.trip_time_s
        assert got.cache_hit == want.cache_hit
