"""US-25 scenario wrapper and profile playback."""

import numpy as np
import pytest

from repro.core.planner import PlannerConfig, UnconstrainedDpPlanner
from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError
from repro.sim.scenario import Us25Scenario, drive_profile, profile_speed_command


@pytest.fixture(scope="module")
def plan(us25, coarse_config):
    planner = UnconstrainedDpPlanner(us25, config=coarse_config)
    return planner.plan(0.0, max_trip_time_s=320.0).profile


class TestSpeedCommand:
    def test_relaunches_from_planned_stops(self, plan):
        command = profile_speed_command(plan)
        assert command(0.0) > 0.0  # launch from the source
        assert command(490.0) > 0.0  # relaunch after the stop sign

    def test_tracks_plan_during_cruise(self, plan):
        command = profile_speed_command(plan)
        mid = 2500.0
        assert command(mid) == pytest.approx(plan.speed_at(mid), abs=0.6)

    def test_clamps_out_of_range_positions(self, plan):
        command = profile_speed_command(plan)
        assert command(-10.0) >= 0.0
        assert command(5000.0) == pytest.approx(0.0, abs=0.1)


class TestScenario:
    def test_observe_queues_shapes(self, us25):
        scenario = Us25Scenario(road=us25, arrival_rate_vph=200.0, seed=5)
        result = scenario.observe_queues(300.0)
        assert set(result.queue_counts) == {1820.0, 3460.0}
        times, counts = result.queue_counts[1820.0]
        assert times.shape == counts.shape
        assert result.ev_trace is None

    def test_drive_returns_complete_trace(self, us25, plan):
        scenario = Us25Scenario(road=us25, arrival_rate_vph=100.0, warmup_s=30.0, seed=5)
        result = scenario.drive(plan, depart_s=30.0)
        trace = result.ev_trace
        assert trace is not None
        assert trace.positions_m[-1] >= us25.length_m - 1.0
        assert result.ev_exited_at_s is not None

    def test_seeded_reproducibility(self, us25, plan):
        a = Us25Scenario(road=us25, arrival_rate_vph=150.0, warmup_s=10.0, seed=9)
        b = Us25Scenario(road=us25, arrival_rate_vph=150.0, warmup_s=10.0, seed=9)
        ta = a.drive(plan, depart_s=10.0).ev_trace
        tb = b.drive(plan, depart_s=10.0).ev_trace
        np.testing.assert_array_equal(ta.speeds_ms, tb.speeds_ms)

    def test_raw_callable_command(self, us25):
        scenario = Us25Scenario(road=us25, arrival_rate_vph=0.0, warmup_s=0.0, seed=1)
        result = scenario.drive(lambda s: 12.0, depart_s=0.0)
        # With no plan-driven stops the EV still serves the stop sign.
        assert result.ev_stops >= 1

    def test_validation(self, us25):
        with pytest.raises(ConfigurationError):
            Us25Scenario(road=us25, arrival_rate_vph=-1.0)
        with pytest.raises(ConfigurationError):
            Us25Scenario(road=us25, warmup_s=-1.0)

    def test_drive_profile_helper(self, us25, plan):
        trace = drive_profile(us25, plan, arrival_rate_vph=100.0, depart_s=20.0, seed=2)
        assert trace.distance_m == pytest.approx(us25.length_m, abs=5.0)
