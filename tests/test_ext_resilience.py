"""The resilience extension experiment: sweep runs, aggregates, report."""

import pytest

from repro.experiments import ext_resilience
from repro.experiments.runner import EXPERIMENTS
from repro.resilience.ladder import TIER_QUEUE_DP


@pytest.fixture(scope="module")
def result():
    config = ext_resilience.ResilienceConfig(
        drop_rates=(0.0, 0.5),
        departures=(300.0,),
        seeds=(13,),
    )
    return ext_resilience.run(config)


class TestRun:
    def test_one_row_per_rate(self, result):
        assert [row.drop_rate for row in result.rows] == [0.0, 0.5]

    def test_every_drive_completes(self, result):
        for row in result.rows:
            assert row.completed == (1, 1)

    def test_zero_rate_never_degrades(self, result):
        clean = result.rows[0]
        assert set(clean.tier_counts) <= {TIER_QUEUE_DP}
        assert clean.retries == 0
        assert clean.breaker_opens == 0

    def test_faulted_rate_shows_fault_handling(self, result):
        faulted = result.rows[1]
        assert faulted.retries > 0
        assert sum(faulted.tier_counts.values()) > 0

    def test_metrics_are_finite(self, result):
        for row in result.rows:
            assert row.energy_mah > 0
            assert row.trip_time_s > 0
            assert row.signal_stops >= 0


class TestReport:
    def test_report_renders_table_and_verdict(self, result):
        text = ext_resilience.report(result)
        assert "drop rate" in text
        assert "queue_dp" in text
        assert "speed_limit" in text
        assert "every drive completed at every fault rate" in text

    def test_incomplete_matrix_flagged(self, result):
        crippled = ext_resilience.ResilienceResult(
            rows=[
                ext_resilience.ResilienceRow(
                    drop_rate=1.0,
                    energy_mah=float("nan"),
                    trip_time_s=float("nan"),
                    signal_stops=0,
                    tier_counts={},
                    retries=0,
                    breaker_opens=3,
                    completed=(0, 1),
                )
            ]
        )
        assert "SOME DRIVES DID NOT COMPLETE" in ext_resilience.report(crippled)


class TestRegistration:
    def test_registered_in_runner(self):
        assert EXPERIMENTS["ext-resilience"] == (
            ext_resilience.run,
            ext_resilience.report,
        )
