"""Plan audits: PlanValidator verdicts and the repair pass."""

import dataclasses

import numpy as np
import pytest

from repro.core.planner import QueueAwareDpPlanner
from repro.core.profile import VelocityProfile
from repro.errors import PlanRejectedError
from repro.guard.plan_check import (
    CODE_ACCEL,
    CODE_ARRIVAL_WINDOW,
    CODE_DECEL,
    CODE_NONFINITE,
    CODE_ORDER,
    CODE_SPEED_LIMIT,
    PlanValidator,
    PlanVerdict,
)
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


@pytest.fixture(scope="module")
def validator(us25):
    return PlanValidator(us25)


@pytest.fixture(scope="module")
def solution(us25, coarse_config):
    planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
    return planner.plan(0.0, max_trip_time_s=320.0)


def _steady(us25, speed=15.0, n=9):
    positions = np.linspace(0.0, us25.length_m, n)
    speeds = np.full(n, speed)
    speeds[0] = speeds[-1] = 5.0  # gentle ends, no zero-average segments
    return VelocityProfile(positions, speeds, start_time_s=0.0)


class TestVerdicts:
    def test_dp_solution_passes_its_own_constraints(
        self, validator, solution, us25, coarse_config
    ):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        verdict = validator.check_profile(
            solution.profile, planner.signal_constraints(0.0)
        )
        assert verdict.ok
        assert verdict.summary() == "plan valid: all safety invariants hold"

    def test_nan_speed_is_fatal(self, validator, solution):
        spd = solution.profile.speeds_ms.copy()
        spd[len(spd) // 2] = np.nan
        profile = VelocityProfile(
            solution.profile.positions_m, spd, dwell_s=solution.profile.dwell_s
        )
        verdict = validator.check_profile(profile)
        assert not verdict.ok and not verdict.repairable
        assert verdict.codes == (CODE_NONFINITE,)

    def test_nan_position_reported_before_kinematics(self, validator, us25):
        profile = _steady(us25)
        pos = profile.positions_m.copy()
        pos[3] = np.nan  # VelocityProfile's own check passes NaN silently
        broken = object.__new__(VelocityProfile)
        broken.positions_m = pos
        broken.speeds_ms = profile.speeds_ms
        broken.dwell_s = profile.dwell_s
        broken.start_time_s = 0.0
        verdict = validator.check_profile(broken)
        assert CODE_NONFINITE in verdict.codes
        assert CODE_SPEED_LIMIT not in verdict.codes

    def test_non_monotone_positions_fatal(self, validator, us25):
        profile = _steady(us25)
        broken = object.__new__(VelocityProfile)
        broken.positions_m = profile.positions_m.copy()
        broken.positions_m[4] = broken.positions_m[2]
        broken.speeds_ms = profile.speeds_ms
        broken.dwell_s = profile.dwell_s
        broken.start_time_s = 0.0
        verdict = validator.check_profile(broken)
        assert verdict.codes == (CODE_ORDER,)

    def test_small_overspeed_repairable_large_fatal(self, validator, us25, solution):
        base = solution.profile
        for delta, expect_repairable in ((1.5, True), (20.0, False)):
            spd = base.speeds_ms.copy()
            i = len(spd) // 2
            spd[i] = us25.v_max_at(float(base.positions_m[i])) + delta
            profile = VelocityProfile(base.positions_m, spd, dwell_s=base.dwell_s)
            verdict = validator.check_profile(profile)
            assert not verdict.ok
            assert CODE_SPEED_LIMIT in verdict.codes
            speeding = [v for v in verdict.violations if v.code == CODE_SPEED_LIMIT]
            assert all(v.repairable is expect_repairable for v in speeding)

    def test_accel_spike_flagged(self, validator, us25):
        profile = _steady(us25, speed=10.0)
        spd = profile.speeds_ms.copy()
        ds = float(np.diff(profile.positions_m)[3])
        spd[4] = np.sqrt(spd[3] ** 2 + 2.0 * 8.0 * ds)  # 8 m/s^2 demand
        spiked = VelocityProfile(profile.positions_m, spd)
        verdict = validator.check_profile(spiked, constraints=[])
        assert CODE_ACCEL in verdict.codes

    def test_hard_brake_flagged_as_decel(self, validator, us25):
        profile = _steady(us25, speed=14.0, n=85)  # ~50 m segments
        spd = profile.speeds_ms.copy()
        spd[40] = 1.0  # from 14 m/s over one 50 m segment: ~-2 m/s^2
        braking = VelocityProfile(profile.positions_m, spd)
        verdict = validator.check_profile(braking, constraints=[])
        assert CODE_DECEL in verdict.codes

    def test_arrival_outside_green_flagged(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        good = planner.plan(0.0, max_trip_time_s=320.0).profile
        slowed = VelocityProfile(
            good.positions_m,
            good.speeds_ms * 0.75,
            dwell_s=good.dwell_s,
            start_time_s=good.start_time_s,
        )
        verdict = validator.check_profile(slowed, planner.signal_constraints(0.0))
        assert not verdict.ok
        assert CODE_ARRIVAL_WINDOW in verdict.codes
        miss = [v for v in verdict.violations if v.code == CODE_ARRIVAL_WINDOW][0]
        assert not miss.repairable
        assert miss.position_m in {s.position_m for s in us25.signals}

    def test_plan_dwelling_at_signal_exempt_from_window_check(self, validator, us25):
        sig = us25.signals[0].position_m
        positions = np.asarray([0.0, sig, us25.length_m])
        speeds = np.asarray([5.0, 0.0, 5.0])
        dwell = np.asarray([0.0, 30.0, 0.0])
        profile = VelocityProfile(positions, speeds, dwell_s=dwell)
        verdict = validator.check_profile(profile)
        assert CODE_ARRIVAL_WINDOW not in verdict.codes

    def test_check_solution_rejects_nonfinite_metrics(self, validator, solution):
        broken = dataclasses.replace(solution, energy_j=float("nan"))
        verdict = validator.check_solution(
            broken, constraints=[]
        )
        assert not verdict.ok
        assert any("energy_j" in v.detail for v in verdict.violations)

    def test_verdict_repairable_needs_all_repairable(self):
        from repro.guard.plan_check import Violation

        fixable = Violation("speed_limit", 0.0, 1.0, 0.0, repairable=True)
        fatal = Violation("nonfinite", 0.0, 1.0, 0.0, repairable=False)
        assert PlanVerdict(ok=False, violations=(fixable,)).repairable
        assert not PlanVerdict(ok=False, violations=(fixable, fatal)).repairable
        assert not PlanVerdict(ok=True).repairable


class TestRepair:
    def test_valid_plan_returned_as_same_object(self, validator, solution, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        repaired, report = validator.repair_plan(
            solution.profile, planner.signal_constraints(0.0)
        )
        assert repaired is solution.profile
        assert not report

    def test_small_overspeed_clamped_back_to_limit(self, validator, us25, solution):
        base = solution.profile
        spd = base.speeds_ms.copy()
        i = len(spd) // 2
        limit = us25.v_max_at(float(base.positions_m[i]))
        spd[i] = limit + 2.0
        profile = VelocityProfile(
            base.positions_m, spd, dwell_s=base.dwell_s, start_time_s=base.start_time_s
        )
        repaired, report = validator.repair_plan(profile, constraints=[])
        assert report
        assert repaired.speeds_ms[i] <= limit + 1e-9
        assert validator.check_profile(repaired, constraints=[]).ok

    def test_repair_respects_envelope_not_just_limits(self, validator, us25):
        profile = _steady(us25, speed=12.0)
        spd = profile.speeds_ms.copy()
        i = 4
        limit = us25.v_max_at(float(profile.positions_m[i]))
        spd[i] = limit + 2.5
        bumped = VelocityProfile(profile.positions_m, spd)
        repaired, _ = validator.repair_plan(bumped, constraints=[])
        accels = repaired.accelerations()
        assert np.all(accels <= validator.vehicle.max_accel_ms2 + validator.accel_tol_ms2)
        assert np.all(accels >= validator.vehicle.min_accel_ms2 - validator.accel_tol_ms2)

    def test_fatal_plan_refused(self, validator, solution):
        spd = solution.profile.speeds_ms.copy()
        spd[len(spd) // 2] = np.nan
        profile = VelocityProfile(
            solution.profile.positions_m, spd, dwell_s=solution.profile.dwell_s
        )
        with pytest.raises(PlanRejectedError) as err:
            validator.repair_plan(profile)
        assert err.value.violations
        assert err.value.violations[0].code == CODE_NONFINITE

    def test_repair_that_breaks_windows_is_refused(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        good = planner.plan(0.0, max_trip_time_s=320.0).profile
        spd = good.speeds_ms.copy()
        fast = spd > 2.0
        spd[fast] = np.minimum(
            spd[fast] + 2.0,
            [us25.v_max_at(float(s)) + 2.0 for s in good.positions_m[fast]],
        )
        hurried = VelocityProfile(
            good.positions_m, spd, dwell_s=good.dwell_s, start_time_s=good.start_time_s
        )
        verdict = validator.check_profile(hurried, planner.signal_constraints(0.0))
        if verdict.repairable:
            # Clamping back to limits slows the plan; if the re-audit finds
            # arrivals pushed out of their windows the repair must refuse.
            try:
                repaired, _ = validator.repair_plan(
                    hurried, planner.signal_constraints(0.0)
                )
            except PlanRejectedError:
                pass
            else:
                assert validator.check_profile(
                    repaired, planner.signal_constraints(0.0)
                ).ok
        else:
            with pytest.raises(PlanRejectedError):
                validator.repair_plan(hurried, planner.signal_constraints(0.0))
