"""VelocityProfile: timing (Eq. 10), conversions and kinematics."""

import numpy as np
import pytest

from repro.core.profile import TimedTrace, VelocityProfile
from repro.errors import ConfigurationError


@pytest.fixture
def ramp_profile():
    """0 -> 10 m/s over 100 m, cruise 100 m, back to 0 over 100 m."""
    return VelocityProfile(
        positions_m=[0.0, 100.0, 200.0, 300.0],
        speeds_ms=[0.0, 10.0, 10.0, 0.0],
    )


class TestTiming:
    def test_eq10_average_speed_rule(self, ramp_profile):
        arrivals = ramp_profile.arrival_times_s
        assert arrivals[0] == 0.0
        assert arrivals[1] == pytest.approx(100.0 / 5.0)
        assert arrivals[2] == pytest.approx(20.0 + 10.0)
        assert arrivals[3] == pytest.approx(30.0 + 20.0)

    def test_total_time_and_distance(self, ramp_profile):
        assert ramp_profile.total_time_s == pytest.approx(50.0)
        assert ramp_profile.total_distance_m == pytest.approx(300.0)

    def test_dwell_shifts_downstream_arrivals(self):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0],
            speeds_ms=[0.0, 10.0, 10.0],
            dwell_s=[0.0, 3.0, 0.0],
        )
        assert profile.arrival_times_s[1] == pytest.approx(20.0)
        assert profile.arrival_times_s[2] == pytest.approx(20.0 + 3.0 + 10.0)

    def test_start_time_offset(self):
        profile = VelocityProfile([0.0, 50.0], [0.0, 10.0], start_time_s=100.0)
        assert profile.arrival_times_s[0] == 100.0
        assert profile.arrival_times_s[1] == pytest.approx(110.0)

    def test_arrival_time_interpolation(self, ramp_profile):
        # Mid-segment arrival uses the constant-acceleration relation.
        t_mid = ramp_profile.arrival_time_at(150.0)
        assert ramp_profile.arrival_times_s[1] < t_mid < ramp_profile.arrival_times_s[2]
        assert t_mid == pytest.approx(20.0 + 5.0)

    def test_arrival_at_grid_point_exact(self, ramp_profile):
        assert ramp_profile.arrival_time_at(200.0) == pytest.approx(30.0)

    def test_arrival_out_of_range(self, ramp_profile):
        with pytest.raises(ValueError):
            ramp_profile.arrival_time_at(400.0)


class TestKinematics:
    def test_speed_at_constant_accel_relation(self, ramp_profile):
        # v^2 = 2 a s with a = 0.5 m/s^2 on the first segment.
        assert ramp_profile.speed_at(50.0) == pytest.approx(np.sqrt(2 * 0.5 * 50.0))

    def test_speed_at_grid_points(self, ramp_profile):
        assert ramp_profile.speed_at(100.0) == pytest.approx(10.0)
        assert ramp_profile.speed_at(300.0) == pytest.approx(0.0)

    def test_accelerations(self, ramp_profile):
        accels = ramp_profile.accelerations()
        assert accels[0] == pytest.approx(0.5)
        assert accels[1] == pytest.approx(0.0)
        assert accels[2] == pytest.approx(-0.5)


class TestValidation:
    def test_rejects_two_zero_speed_neighbours(self):
        with pytest.raises(ConfigurationError):
            VelocityProfile([0.0, 10.0, 20.0], [0.0, 0.0, 5.0])

    def test_rejects_decreasing_positions(self):
        with pytest.raises(ConfigurationError):
            VelocityProfile([0.0, 10.0, 5.0], [1.0, 1.0, 1.0])

    def test_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            VelocityProfile([0.0, 10.0], [1.0, -1.0])

    def test_rejects_negative_dwell(self):
        with pytest.raises(ConfigurationError):
            VelocityProfile([0.0, 10.0], [0.0, 1.0], dwell_s=[-1.0, 0.0])

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            VelocityProfile([0.0], [0.0])


class TestTimeTrace:
    def test_roundtrip_duration(self, ramp_profile):
        trace = ramp_profile.to_time_trace(dt_s=0.25)
        assert trace.duration_s == pytest.approx(ramp_profile.total_time_s, abs=0.3)
        assert trace.distance_m == pytest.approx(300.0, abs=1.0)

    def test_trace_includes_dwell_as_stop(self):
        profile = VelocityProfile(
            positions_m=[0.0, 100.0, 200.0],
            speeds_ms=[0.0, 10.0, 10.0],
            dwell_s=[0.0, 4.0, 0.0],
        )
        trace = profile.to_time_trace(dt_s=0.5)
        # Speed dips to zero during the dwell around t=20..24.
        window = (trace.times_s > 20.5) & (trace.times_s < 23.5)
        assert np.all(trace.speeds_ms[window] < 10.0)

    def test_rejects_bad_dt(self, ramp_profile):
        with pytest.raises(ValueError):
            ramp_profile.to_time_trace(dt_s=0.0)

    def test_energy_smoke(self, ramp_profile):
        trip = ramp_profile.energy()
        assert trip.net_mah > 0
        assert trip.distance_m == pytest.approx(300.0, abs=1.0)

    def test_from_time_trace_roundtrip(self, ramp_profile):
        trace = ramp_profile.to_time_trace(dt_s=0.25)
        rebuilt = VelocityProfile.from_time_trace(trace)
        assert rebuilt.total_distance_m == pytest.approx(300.0, abs=2.0)
        assert rebuilt.total_time_s == pytest.approx(ramp_profile.total_time_s, abs=1.0)


class TestTimedTrace:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimedTrace(
                times_s=np.asarray([0.0, 1.0]),
                speeds_ms=np.asarray([1.0]),
                positions_m=np.asarray([0.0, 1.0]),
            )
        with pytest.raises(ConfigurationError):
            TimedTrace(
                times_s=np.asarray([0.0, 0.0]),
                speeds_ms=np.asarray([1.0, 1.0]),
                positions_m=np.asarray([0.0, 1.0]),
            )
        with pytest.raises(ConfigurationError):
            TimedTrace(
                times_s=np.asarray([0.0, 1.0]),
                speeds_ms=np.asarray([1.0, -1.0]),
                positions_m=np.asarray([0.0, 1.0]),
            )
