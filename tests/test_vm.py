"""Vehicle-movement (queue discharge) models — Eq. 4 and Eq. 5."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight
from repro.signal.vm import InstantDischargeModel, VehicleMovementModel


@pytest.fixture
def light():
    return TrafficLight(red_s=30.0, green_s=30.0)


@pytest.fixture
def vm(light):
    return VehicleMovementModel(
        light=light, v_min_ms=11.11, a_max_ms2=2.5, spacing_m=8.5, turn_ratio=0.7636
    )


class TestVehicleMovementModel:
    def test_zero_speed_during_red(self, vm):
        assert vm.queue_speed(0.0) == 0.0
        assert vm.queue_speed(29.9) == 0.0

    def test_ramp_phase_eq4(self, vm):
        # Condition (ii): v = a_max * (t - t_red).
        assert vm.queue_speed(31.0) == pytest.approx(2.5)
        assert vm.queue_speed(33.0) == pytest.approx(7.5)

    def test_ramp_ends_at_v_min(self, vm):
        assert vm.ramp_end_s == pytest.approx(30.0 + 11.11 / 2.5)
        assert vm.queue_speed(vm.ramp_end_s + 1.0) == pytest.approx(11.11)

    def test_leaving_rate_eq5(self, vm):
        t = vm.ramp_end_s + 1.0
        assert vm.leaving_rate(t) == pytest.approx(11.11 / (8.5 * 0.7636))

    def test_leaving_rate_vector(self, vm):
        t = np.asarray([0.0, 31.0, 40.0])
        rates = vm.leaving_rate(t)
        assert rates.shape == (3,)
        assert rates[0] == 0.0
        assert rates[2] > rates[1] > 0.0

    def test_discharged_vehicles_zero_during_red(self, vm):
        assert vm.discharged_vehicles(25.0) == 0.0

    def test_discharged_vehicles_matches_integral(self, vm):
        t = 40.0
        dt = 0.001
        grid = np.arange(0.0, t, dt)
        numeric = float(np.sum(vm.leaving_rate(grid) * dt))
        assert vm.discharged_vehicles(t) == pytest.approx(numeric, rel=1e-3)

    def test_discharged_monotone(self, vm):
        samples = [vm.discharged_vehicles(t) for t in np.linspace(0.0, 60.0, 61)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(v_min_ms=0.0),
            dict(a_max_ms2=-1.0),
            dict(spacing_m=0.0),
            dict(turn_ratio=1.5),
        ],
    )
    def test_validation(self, light, kwargs):
        base = dict(light=light, v_min_ms=11.11)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            VehicleMovementModel(**base)


class TestInstantDischargeModel:
    def test_step_to_v_min(self, light):
        model = InstantDischargeModel(light=light, v_min_ms=11.11)
        assert model.queue_speed(29.9) == 0.0
        assert model.queue_speed(30.1) == pytest.approx(11.11)

    def test_discharges_faster_than_vm(self, light, vm):
        instant = InstantDischargeModel(
            light=light, v_min_ms=11.11, spacing_m=8.5, turn_ratio=0.7636
        )
        for t in (32.0, 34.0, 36.0):
            assert instant.discharged_vehicles(t) > vm.discharged_vehicles(t)

    def test_vm_converges_to_instant_rate(self, light, vm):
        """Fig. 5a: the VM rate reaches the same plateau, only later."""
        instant = InstantDischargeModel(
            light=light, v_min_ms=11.11, spacing_m=8.5, turn_ratio=0.7636
        )
        assert vm.leaving_rate(50.0) == pytest.approx(instant.leaving_rate(50.0))

    def test_validation(self, light):
        with pytest.raises(ConfigurationError):
            InstantDischargeModel(light=light, v_min_ms=-1.0)
