"""Metrics and table rendering."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    mean_relative_error,
    per_day_prediction_errors,
    root_mean_squared_error,
    savings_percent,
)
from repro.analysis.tables import render_table


class TestMetrics:
    def test_mre_basic(self):
        assert mean_relative_error([110.0], [100.0]) == pytest.approx(0.10)

    def test_mre_floor_excludes_small(self):
        value = mean_relative_error([110.0, 5.0], [100.0, 0.5], floor=1.0)
        assert value == pytest.approx(0.10)

    def test_mre_all_below_floor_raises(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [0.1], floor=1.0)

    def test_mre_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0, 2.0], [1.0])

    def test_rmse(self):
        assert root_mean_squared_error([3.0, 1.0], [0.0, 1.0]) == pytest.approx(
            np.sqrt(4.5)
        )

    def test_per_day_rows(self):
        hours = np.arange(48)
        actual = np.full(48, 100.0)
        predicted = np.concatenate([np.full(24, 110.0), np.full(24, 90.0)])
        rows = per_day_prediction_errors(predicted, actual, hours)
        assert [r[0] for r in rows] == ["Mon.", "Tue."]
        assert rows[0][1] == pytest.approx(0.10)
        assert rows[1][2] == pytest.approx(10.0)

    def test_savings_percent(self):
        assert savings_percent(82.5, 100.0) == pytest.approx(17.5)
        with pytest.raises(ValueError):
            savings_percent(1.0, 0.0)


class TestTables:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [("a", 1.5), ("long-name", 22.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width
        assert "1.50" in lines[2]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [("only-one",)])

    def test_non_float_passthrough(self):
        text = render_table(["k"], [("word",), (7,)])
        assert "word" in text
        assert "7" in text
