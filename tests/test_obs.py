"""The observability layer: registry, spans, histograms, exports."""

import json
import math

import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry


class TestCounters:
    def test_counter_starts_at_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("x") == 0

    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.counter_value("x") == 5

    def test_gauge_keeps_latest(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauge_value("g") == 7.5
        assert reg.gauge_value("missing") is None


class TestHistogram:
    def test_empty_histogram(self):
        h = Histogram()
        assert math.isnan(h.percentile(50.0))
        assert h.snapshot() == {"count": 0}

    def test_single_sample(self):
        h = Histogram()
        h.observe(0.25)
        assert h.count == 1
        assert h.percentile(50.0) == pytest.approx(0.25, rel=0.0)

    def test_percentiles_within_bucket_resolution(self):
        """Log-bucket estimates stay within the bucket growth factor."""
        import random

        rng = random.Random(42)
        samples = [rng.uniform(0.001, 1.0) for _ in range(5000)]
        h = Histogram()
        for s in samples:
            h.observe(s)
        samples.sort()
        for q in (50.0, 90.0, 99.0):
            true = samples[int(q / 100.0 * len(samples)) - 1]
            est = h.percentile(q)
            assert est == pytest.approx(true, rel=h.growth - 1.0)

    def test_percentiles_monotone_and_clamped(self):
        h = Histogram()
        for v in (0.1, 0.2, 0.4, 0.8):
            h.observe(v)
        assert h.percentile(0.0) == pytest.approx(0.1)
        assert h.percentile(100.0) == pytest.approx(0.8)
        assert h.percentile(50.0) <= h.percentile(90.0) <= h.percentile(99.0)

    def test_negative_samples_clamp_to_zero(self):
        h = Histogram()
        h.observe(-1.0)
        assert h.min == 0.0
        assert h.count == 1

    def test_overflow_lands_in_last_bucket(self):
        h = Histogram(base=1e-6, growth=2.0, n_buckets=4)
        h.observe(1e12)
        assert h.counts[-1] == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Histogram(base=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(n_buckets=1)

    def test_invalid_percentile_rejected(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)


class TestSpans:
    def test_span_records_duration(self):
        reg = MetricsRegistry()
        with reg.span("work"):
            pass
        stats = reg.span_stats("work")
        assert stats.count == 1
        assert stats.total_s >= 0.0

    def test_nested_spans_build_dotted_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                with reg.span("leaf"):
                    pass
            with reg.span("inner"):
                pass
        assert reg.span_paths() == ["outer", "outer.inner", "outer.inner.leaf"]
        assert reg.span_stats("outer.inner").count == 2

    def test_numeric_fields_sum_across_spans(self):
        reg = MetricsRegistry()
        for n in (10, 32):
            with reg.span("expand") as span:
                span.add(transitions=n)
        assert reg.span_stats("expand").fields["transitions"] == 42

    def test_non_numeric_fields_keep_last_value(self):
        reg = MetricsRegistry()
        with reg.span("solve") as span:
            span.add(objective="energy")
        with reg.span("solve") as span:
            span.add(objective="time")
        assert reg.span_stats("solve").fields["objective"] == "time"

    def test_span_recorded_when_body_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("failing"):
                raise RuntimeError("boom")
        assert reg.span_stats("failing").count == 1
        assert not reg._span_stack  # stack unwound

    def test_sibling_after_exception_not_nested(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.span("a"):
                raise ValueError
        with reg.span("b"):
            pass
        assert reg.span_stats("b") is not None  # not "a.b"


class TestNoOpMode:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 0.5)
        with reg.span("s") as span:
            span.add(x=1)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def test_disabled_span_is_shared_null_object(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.span("a") is reg.span("b")

    def test_default_registry_starts_disabled(self):
        assert obs.get_registry() is not None
        # Tests elsewhere may toggle it; the module default itself must
        # boot disabled so library users pay nothing by default.
        from repro.obs import registry as registry_module

        assert registry_module._default_registry.enabled is False

    def test_reenabling_resumes_recording(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.enabled = True
        reg.inc("c")
        assert reg.counter_value("c") == 1


class TestActiveRegistry:
    def test_use_registry_installs_and_restores(self):
        before = obs.get_registry()
        scoped = MetricsRegistry()
        with obs.use_registry(scoped) as reg:
            assert reg is scoped
            assert obs.get_registry() is scoped
        assert obs.get_registry() is before

    def test_set_registry_none_restores_default(self):
        from repro.obs import registry as registry_module

        previous = obs.set_registry(MetricsRegistry())
        try:
            obs.set_registry(None)
            assert obs.get_registry() is registry_module._default_registry
        finally:
            obs.set_registry(previous)


class TestExports:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("cloud.hits", 3)
        reg.gauge("sim.vehicles", 12)
        reg.observe("cloud.request_s", 0.05)
        reg.observe("cloud.request_s", 0.15)
        with reg.span("dp.solve") as span:
            span.add(expanded_transitions=100)
            with reg.span("expand"):
                pass
        return reg

    def test_json_roundtrip(self):
        snap = json.loads(obs.to_json(self._populated()))
        assert snap["counters"]["cloud.hits"] == 3
        assert snap["gauges"]["sim.vehicles"] == 12
        assert snap["histograms"]["cloud.request_s"]["count"] == 2
        assert "dp.solve" in snap["spans"]
        assert "dp.solve.expand" in snap["spans"]
        assert snap["spans"]["dp.solve"]["fields"]["expanded_transitions"] == 100

    def test_json_has_no_nan_literals(self):
        reg = MetricsRegistry()
        with reg.span("empty-fields"):
            pass
        json.loads(obs.to_json(reg))  # must not raise

    def test_csv_rows(self):
        text = obs.to_csv(self._populated())
        lines = text.strip().splitlines()
        assert lines[0] == "kind,name,stat,value"
        assert "counter,cloud.hits,value,3" in lines
        assert any(line.startswith("span,dp.solve.expand,count,") for line in lines)
        assert any(
            line.startswith("span,dp.solve,field.expanded_transitions,100")
            for line in lines
        )

    def test_summary_mentions_every_section(self):
        text = obs.summary(self._populated())
        for token in ("spans", "counters", "gauges", "histograms", "dp.solve.expand"):
            assert token in text

    def test_summary_of_empty_registry(self):
        assert obs.summary(MetricsRegistry()) == "(no metrics recorded)"

    def test_reset_clears_everything(self):
        reg = self._populated()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }
        assert reg.enabled


class TestInstrumentation:
    def test_dp_solve_emits_phase_spans(self, us25, coarse_config):
        from repro.core.planner import UnconstrainedDpPlanner

        with obs.use_registry(MetricsRegistry()) as reg:
            planner = UnconstrainedDpPlanner(us25, config=coarse_config)
            solution = planner.plan(start_time_s=0.0, max_trip_time_s=300.0)
        assert reg.span_stats("dp.table_build").count == 1
        solve = reg.span_stats("dp.solve")
        assert solve.count == 1
        assert solve.fields["expanded_transitions"] == solution.expanded_transitions
        n_segments = planner.solver.positions.size - 1
        assert reg.span_stats("dp.solve.expand").count == n_segments
        assert reg.span_stats("dp.solve.select").count == n_segments
        assert reg.span_stats("dp.solve.backtrack").count == 1

    def test_infeasible_solve_flags_span(self, us25, coarse_config):
        from repro.core.planner import UnconstrainedDpPlanner
        from repro.errors import InfeasibleProblemError

        with obs.use_registry(MetricsRegistry()) as reg:
            planner = UnconstrainedDpPlanner(us25, config=coarse_config)
            with pytest.raises(InfeasibleProblemError):
                planner.plan(start_time_s=0.0, max_trip_time_s=5.0)
        assert reg.span_stats("dp.solve").fields["infeasible"] == 1

    def test_simulator_steps_record_metrics(self, plain_road):
        from repro.sim.simulator import CorridorSimulator

        with obs.use_registry(MetricsRegistry()) as reg:
            sim = CorridorSimulator(plain_road, arrivals_s=[0.0, 2.0], seed=1)
            sim.run(until_s=5.0)
        assert reg.counter_value("sim.steps") == 10
        assert reg.histogram("sim.step_s").count == 10
        assert reg.gauge_value("sim.vehicles") is not None

    def test_sae_fit_records_layer_and_epoch_spans(self):
        import numpy as np

        from repro.traffic.sae import SAEPredictor

        rng = np.random.default_rng(0)
        x = rng.random((40, 6))
        y = rng.random(40)
        with obs.use_registry(MetricsRegistry()) as reg:
            SAEPredictor(
                hidden_sizes=(4,), pretrain_epochs=2, finetune_epochs=3
            ).fit(x, y)
        assert reg.span_stats("sae.fit").count == 1
        assert reg.span_stats("sae.fit.pretrain_layer").count == 1
        assert reg.span_stats("sae.fit.finetune_epoch").count == 3
        assert reg.histogram("sae.pretrain.recon_mse").count == 2
        assert reg.histogram("sae.finetune.loss").count == 3
