"""Sliding-window supervised dataset construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.dataset import (
    DAILY_LAGS,
    build_dataset,
    train_test_split_by_hour,
)
from repro.traffic.volume import VolumeGenerator


@pytest.fixture(scope="module")
def series():
    return VolumeGenerator(seed=4, incident_rate_per_day=0.0).generate(21)


class TestBuildDataset:
    def test_shapes(self, series):
        ds = build_dataset(series, window=12)
        history = max(12, max(DAILY_LAGS))
        assert ds.n_examples == len(series) - history
        # window + lags + 6 hod harmonics + 2 dow + weekend flag
        assert ds.features.shape == (ds.n_examples, 12 + len(DAILY_LAGS) + 9)

    def test_targets_are_next_hour(self, series):
        ds = build_dataset(series, window=12)
        raw = series.volumes_vph
        history = max(12, max(DAILY_LAGS))
        expected = (raw[history] - ds.scale_min) / (ds.scale_max - ds.scale_min)
        assert ds.targets[0] == pytest.approx(expected)

    def test_window_feature_is_recent_past(self, series):
        ds = build_dataset(series, window=12)
        raw = series.volumes_vph
        history = max(12, max(DAILY_LAGS))
        normalized = (raw[history - 1] - ds.scale_min) / (ds.scale_max - ds.scale_min)
        assert ds.features[0, 11] == pytest.approx(normalized)

    def test_lag_features(self, series):
        ds = build_dataset(series, window=12)
        raw = series.volumes_vph
        history = max(12, max(DAILY_LAGS))
        lag24 = (raw[history - 24] - ds.scale_min) / (ds.scale_max - ds.scale_min)
        assert ds.features[0, 12] == pytest.approx(lag24)

    def test_normalization_bounds(self, series):
        ds = build_dataset(series)
        assert ds.targets.min() >= 0.0
        assert ds.targets.max() <= 1.0

    def test_denormalize_roundtrip(self, series):
        ds = build_dataset(series)
        volumes = np.asarray([100.0, 250.0])
        np.testing.assert_allclose(ds.denormalize(ds.normalize(volumes)), volumes)

    def test_explicit_scale(self, series):
        ds = build_dataset(series, scale_min=0.0, scale_max=1000.0)
        assert ds.scale_max == 1000.0

    def test_too_short_series_rejected(self):
        short = VolumeGenerator(seed=1).generate(2)
        with pytest.raises(ConfigurationError):
            build_dataset(short, window=12)

    def test_bad_window_rejected(self, series):
        with pytest.raises(ConfigurationError):
            build_dataset(series, window=0)

    def test_degenerate_scale_rejected(self, series):
        with pytest.raises(ConfigurationError):
            build_dataset(series, scale_min=10.0, scale_max=10.0)


class TestTrainTestSplit:
    def test_chronological_split(self, series):
        train, test = train_test_split_by_hour(series, test_hours=48)
        split_hour = len(series) - 48
        assert train.target_hours.max() < split_hour
        assert test.target_hours.min() == split_hour
        assert test.n_examples == 48

    def test_shared_normalization(self, series):
        train, test = train_test_split_by_hour(series, test_hours=48)
        assert test.scale_min == train.scale_min
        assert test.scale_max == train.scale_max

    def test_invalid_test_hours(self, series):
        with pytest.raises(ConfigurationError):
            train_test_split_by_hour(series, test_hours=0)
        with pytest.raises(ConfigurationError):
            train_test_split_by_hour(series, test_hours=len(series))
