"""Safety supervisor: transparency, ladder fall-through, safe stop."""

import numpy as np
import pytest

from repro.cloud.messages import PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.core.planner import QueueAwareDpPlanner
from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError, PlanRejectedError, PlanningFailedError
from repro.guard.plan_check import PlanValidator
from repro.guard.supervisor import TIER_SAFE_STOP, GuardStats, SafetySupervisor
from repro.resilience.client import ResilientPlanClient
from repro.resilience.faults import DegeneratePlanner, PlanFaultModel
from repro.resilience.ladder import (
    TIER_BASELINE_DP,
    TIER_QUEUE_DP,
    TIERS,
    DegradationLadder,
)
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)


class _NanLimitRoad:
    """A road whose posted limit reads back as NaN (corrupt data)."""

    def __init__(self, road):
        self._road = road

    def __getattr__(self, name):
        return getattr(self._road, name)

    def v_max_at(self, position_m):
        return float("nan")


@pytest.fixture(scope="module")
def validator(us25):
    return PlanValidator(us25)


def _corrupt_response(planner, mode, depart=0.0, cap=320.0, seed=3):
    fault = PlanFaultModel(rate=1.0, modes=(mode,), seed=seed)
    degenerate = DegeneratePlanner(planner, fault)
    solution = degenerate.plan(depart, max_trip_time_s=cap)
    return PlanResponse(
        vehicle_id="ev",
        profile=solution.profile,
        energy_mah=solution.energy_mah,
        trip_time_s=solution.trip_time_s,
        cache_hit=False,
        compute_time_s=0.0,
    )


class TestGuardStats:
    def test_snapshot_is_independent(self):
        stats = GuardStats(plans_checked=3, violation_counts={"accel": 2})
        snap = stats.snapshot()
        stats.plans_checked = 5
        stats.violation_counts["accel"] = 9
        assert snap.plans_checked == 3
        assert snap.violation_counts == {"accel": 2}

    def test_since_diffs_all_counters(self):
        early = GuardStats(plans_checked=2, plans_passed=1, violation_counts={"a": 1})
        late = GuardStats(
            plans_checked=7,
            plans_passed=4,
            plans_rejected=2,
            violation_counts={"a": 3, "b": 1},
        )
        diff = late.since(early)
        assert diff.plans_checked == 5
        assert diff.plans_passed == 3
        assert diff.plans_rejected == 2
        assert diff.violation_counts == {"a": 2, "b": 1}

    def test_validation(self, validator):
        with pytest.raises(ValueError):
            SafetySupervisor(validator, safe_stop_decel_ms2=0.0)
        with pytest.raises(ValueError):
            SafetySupervisor(validator, divergence_threshold_s=-1.0)


class TestScreening:
    def test_valid_profile_passes_through_as_same_object(
        self, validator, us25, coarse_config
    ):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        profile = planner.plan(0.0, max_trip_time_s=320.0).profile
        supervisor = SafetySupervisor(validator)
        screened, verdict, repaired = supervisor.screen_profile(
            profile, planner.signal_constraints(0.0)
        )
        assert screened is profile
        assert verdict.ok and not repaired
        assert supervisor.stats.plans_passed == 1

    def test_degenerate_profile_rejected_with_violations(
        self, validator, us25, coarse_config
    ):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        response = _corrupt_response(planner, "nan_speed")
        supervisor = SafetySupervisor(validator)
        with pytest.raises(PlanRejectedError) as err:
            supervisor.screen_profile(response.profile, tier="queue_dp")
        assert err.value.tier == "queue_dp"
        assert err.value.violations
        assert supervisor.stats.plans_rejected == 1
        assert "nonfinite" in supervisor.stats.violation_counts

    def test_repairable_profile_served_after_clamping(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        base = planner.plan(0.0, max_trip_time_s=320.0).profile
        spd = base.speeds_ms.copy()
        i = len(spd) // 2
        spd[i] = us25.v_max_at(float(base.positions_m[i])) + 1.0
        bumped = VelocityProfile(
            base.positions_m, spd, dwell_s=base.dwell_s, start_time_s=base.start_time_s
        )
        supervisor = SafetySupervisor(validator)
        screened, verdict, repaired = supervisor.screen_profile(bumped, constraints=[])
        assert repaired and not verdict.ok
        assert screened is not bumped
        assert supervisor.stats.plans_repaired == 1
        assert validator.check_profile(screened, constraints=[]).ok

    def test_repair_disabled_rejects_repairable_plans(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        base = planner.plan(0.0, max_trip_time_s=320.0).profile
        spd = base.speeds_ms.copy()
        i = len(spd) // 2
        spd[i] = us25.v_max_at(float(base.positions_m[i])) + 1.0
        bumped = VelocityProfile(
            base.positions_m, spd, dwell_s=base.dwell_s, start_time_s=base.start_time_s
        )
        supervisor = SafetySupervisor(validator, repair=False)
        with pytest.raises(PlanRejectedError):
            supervisor.screen_profile(bumped, constraints=[])

    def test_screen_command_rejects_nonfinite_and_overspeed(self, validator, us25):
        supervisor = SafetySupervisor(validator)
        with pytest.raises(PlanRejectedError):
            supervisor.screen_command(lambda s: float("nan"), tier="speed_limit")
        with pytest.raises(PlanRejectedError):
            supervisor.screen_command(lambda s: 80.0, tier="speed_limit")
        assert supervisor.stats.plans_rejected == 2
        assert supervisor.stats.violation_counts["command"] == 2
        # A limit-tracking command on a healthy road passes.
        supervisor.screen_command(lambda s: us25.v_max_at(min(s, us25.length_m)))
        assert supervisor.stats.plans_passed == 1

    def test_screen_command_rejects_corrupt_road(self, us25):
        supervisor = SafetySupervisor(PlanValidator(_NanLimitRoad(us25)))
        with pytest.raises(PlanRejectedError):
            supervisor.screen_command(lambda s: 10.0, tier="speed_limit")
        assert supervisor.stats.plans_rejected == 1

    def test_safe_stop_command_ramps_to_zero(self, validator):
        supervisor = SafetySupervisor(validator, safe_stop_decel_ms2=1.0)
        command = supervisor.safe_stop_command(position_m=100.0, speed_ms=10.0)
        assert command(100.0) == pytest.approx(10.0)
        assert command(50.0) == pytest.approx(10.0)  # behind: hold speed
        assert 0.0 < command(120.0) < 10.0
        assert command(150.0) == 0.0  # v^2/(2d) = 50 m stopping distance
        assert command(1000.0) == 0.0
        assert supervisor.stats.safe_stops == 1


class TestDivergence:
    def test_zero_outside_span_and_threshold_gating(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        profile = planner.plan(0.0, max_trip_time_s=320.0).profile
        supervisor = SafetySupervisor(validator, divergence_threshold_s=10.0)
        assert supervisor.divergence_s(profile, -5.0, 0.0) == 0.0
        mid = float(profile.positions_m[len(profile.positions_m) // 2])
        on_time = profile.arrival_time_at(mid)
        assert supervisor.divergence_s(profile, mid, on_time) == pytest.approx(0.0)
        assert supervisor.divergence_s(profile, mid, on_time + 30.0) == pytest.approx(30.0)
        assert not supervisor.should_replan(profile, mid, on_time + 5.0)
        assert supervisor.should_replan(profile, mid, on_time + 30.0)
        assert supervisor.stats.early_replans == 1

    def test_disabled_by_default(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        profile = planner.plan(0.0, max_trip_time_s=320.0).profile
        supervisor = SafetySupervisor(validator)
        assert not supervisor.should_replan(profile, 100.0, 1e6)
        assert not supervisor.should_replan(None, 100.0, 1e6)


class TestLadderIntegration:
    def _ladder(self, us25, coarse_config, planner, supervisor, rate=1.0, modes=None, seed=3):
        fault = PlanFaultModel(
            rate=rate, modes=modes or ("nan_speed",), seed=seed
        )
        degenerate = DegeneratePlanner(planner, fault)
        service = CloudPlannerService(degenerate)
        client = ResilientPlanClient(service)
        return DegradationLadder(
            client,
            us25,
            arrival_rates=RATE,
            config=coarse_config,
            supervisor=supervisor,
        )

    def test_rejected_cloud_plan_falls_to_baseline(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        supervisor = SafetySupervisor(validator)
        ladder = self._ladder(us25, coarse_config, planner, supervisor)
        plan = ladder.plan(0.0, max_trip_time_s=320.0)
        assert plan.tier == TIER_BASELINE_DP
        assert supervisor.stats.plans_rejected >= 1
        # The plan that actually serves passed its own audit.
        assert validator.check_profile(plan.profile).ok

    def test_unsupervised_ladder_would_serve_the_corrupt_plan(
        self, us25, coarse_config
    ):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        ladder = self._ladder(us25, coarse_config, planner, supervisor=None)
        plan = ladder.plan(0.0, max_trip_time_s=320.0)
        assert plan.tier == TIER_QUEUE_DP
        assert np.isnan(plan.profile.speeds_ms).any()

    def test_safe_stop_is_last_tier_constant(self):
        assert TIERS[-1] == TIER_SAFE_STOP

    def test_safe_stop_when_every_tier_fails(self, monkeypatch, us25, coarse_config):
        bad_road = _NanLimitRoad(us25)
        supervisor = SafetySupervisor(PlanValidator(bad_road))
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        ladder = self._ladder(us25, coarse_config, planner, supervisor)
        ladder.road = bad_road

        def broken_tier():
            raise ConfigurationError("tier unavailable")

        monkeypatch.setattr(ladder, "_baseline_planner", broken_tier)
        monkeypatch.setattr(ladder, "_glosa_advisor", broken_tier)
        plan = ladder.plan(0.0, max_trip_time_s=320.0)
        assert plan.tier == TIER_SAFE_STOP
        assert plan.profile is None
        assert plan.command(0.0) == 0.0  # engaged at standstill: stay put
        assert supervisor.stats.safe_stops == 1


class TestClosedLoopSupervised:
    def _drive(self, us25, coarse_config, supervisor, seed=13):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        scenario = Us25Scenario(
            road=us25, arrival_rate_vph=300.0, warmup_s=300.0, seed=seed
        )
        driver = ClosedLoopDriver(
            scenario, planner, replan_interval_s=20.0, supervisor=supervisor
        )
        return driver.run(depart_s=300.0, max_trip_time_s=320.0)

    def test_bit_identical_with_and_without_supervisor(self, validator, us25, coarse_config):
        plain = self._drive(us25, coarse_config, supervisor=None)
        guarded = self._drive(us25, coarse_config, SafetySupervisor(validator))
        a, b = plain.ev_trace, guarded.ev_trace
        assert np.array_equal(a.times_s, b.times_s)
        assert np.array_equal(a.positions_m, b.positions_m)
        assert np.array_equal(a.speeds_ms, b.speeds_ms)

    def test_guard_stats_scoped_to_the_drive(self, validator, us25, coarse_config):
        supervisor = SafetySupervisor(validator)
        first = self._drive(us25, coarse_config, supervisor)
        second = self._drive(us25, coarse_config, supervisor)
        assert first.guard is not None and second.guard is not None
        assert first.guard.plans_checked >= 1
        assert second.guard.plans_checked >= 1
        # Cumulative supervisor totals cover both drives; each result only its own.
        assert supervisor.stats.plans_checked == (
            first.guard.plans_checked + second.guard.plans_checked
        )
        assert first.guard.plans_rejected == 0
        assert first.plans_repaired == 0 and first.safe_stops == 0

    def test_unsupervised_result_reports_no_guard(self, us25, coarse_config):
        outcome = self._drive(us25, coarse_config, supervisor=None)
        assert outcome.guard is None
        assert outcome.plans_repaired == 0
        assert outcome.plans_rejected == 0
        assert outcome.early_replans == 0
        assert outcome.safe_stops == 0

    def test_degenerate_plans_never_reach_vehicle_commands(
        self, validator, us25, coarse_config
    ):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        fault = PlanFaultModel(rate=1.0, seed=11)
        degenerate = DegeneratePlanner(planner, fault)
        service = CloudPlannerService(degenerate)
        client = ResilientPlanClient(service)
        supervisor = SafetySupervisor(validator)
        ladder = DegradationLadder(
            client, us25, arrival_rates=RATE, config=coarse_config, supervisor=supervisor
        )
        scenario = Us25Scenario(
            road=us25, arrival_rate_vph=300.0, warmup_s=300.0, seed=13
        )
        driver = ClosedLoopDriver(scenario, ladder=ladder, replan_interval_s=20.0)
        outcome = driver.run(depart_s=300.0, max_trip_time_s=320.0)
        assert outcome.ev_trace is not None
        assert outcome.ev_trace.positions_m[-1] >= us25.length_m - 1.0
        assert degenerate.corrupted > 0
        guard = outcome.guard
        assert guard.plans_rejected + guard.plans_repaired > 0
        # Nothing the vehicle executed was corrupt: every commanded speed
        # stayed finite and under the local limit.
        trace = outcome.ev_trace
        assert np.all(np.isfinite(trace.speeds_ms))
        limits = np.asarray([us25.v_max_at(min(s, us25.length_m)) for s in trace.positions_m])
        assert np.all(trace.speeds_ms <= limits + 0.5)
        # Rejections pushed replans off the primary tier.
        assert outcome.tier_counts.get(TIER_QUEUE_DP, 0) < outcome.replans_applied

    def test_supervisor_conflict_detected(self, validator, us25, coarse_config):
        supervisor_a = SafetySupervisor(validator)
        supervisor_b = SafetySupervisor(validator)
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        service = CloudPlannerService(planner)
        ladder = DegradationLadder(
            ResilientPlanClient(service),
            us25,
            arrival_rates=RATE,
            config=coarse_config,
            supervisor=supervisor_a,
        )
        scenario = Us25Scenario(road=us25, arrival_rate_vph=300.0, warmup_s=0.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(scenario, ladder=ladder, supervisor=supervisor_b)
        driver = ClosedLoopDriver(scenario, ladder=ladder)
        assert driver.supervisor is supervisor_a


class TestServiceScreening:
    def test_service_validator_rejects_before_caching(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        degenerate = DegeneratePlanner(planner, PlanFaultModel(rate=1.0, seed=11))
        service = CloudPlannerService(degenerate, validator=validator)
        from repro.cloud.messages import PlanRequest

        with pytest.raises(PlanningFailedError):
            service.request(PlanRequest(vehicle_id="ev", depart_s=0.0, max_trip_time_s=320.0))
        stats = service.stats
        assert stats.errors == 1
        assert stats.requests == stats.cache_hits + stats.cache_misses + stats.errors

    def test_service_validator_transparent_for_valid_plans(self, validator, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        service = CloudPlannerService(planner, validator=validator)
        from repro.cloud.messages import PlanRequest

        response = service.request(
            PlanRequest(vehicle_id="ev", depart_s=0.0, max_trip_time_s=320.0)
        )
        assert response.profile is not None
        assert service.stats.errors == 0
