"""Property-based tests of the signal/queue models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.signal.light import TrafficLight
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel

rates = st.floats(min_value=0.0, max_value=0.25, allow_nan=False)  # up to 900 vph
reds = st.floats(min_value=5.0, max_value=60.0)
greens = st.floats(min_value=10.0, max_value=60.0)
v_mins = st.floats(min_value=3.0, max_value=16.0)


def make_model(red, green, v_min):
    light = TrafficLight(red_s=red, green_s=green)
    vm = VehicleMovementModel(
        light=light, v_min_ms=v_min, a_max_ms2=2.5, spacing_m=8.5, turn_ratio=0.8
    )
    return QueueLengthModel(vm)


class TestQueueInvariants:
    @given(rate=rates, red=reds, green=greens, v_min=v_mins, t=st.floats(0.0, 120.0))
    @settings(max_examples=300, deadline=None)
    def test_queue_never_negative(self, rate, red, green, v_min, t):
        model = make_model(red, green, v_min)
        assume(t <= model.light.cycle_s)
        assert model.queue_vehicles(t, rate) >= 0.0

    @given(rate=rates, red=reds, green=greens, v_min=v_mins)
    @settings(max_examples=300, deadline=None)
    def test_clear_time_inside_green_or_none(self, rate, red, green, v_min):
        model = make_model(red, green, v_min)
        t_star = model.clear_time(rate)
        if t_star is not None:
            assert red <= t_star <= red + green + 1e-9

    @given(rate=rates, red=reds, green=greens, v_min=v_mins)
    @settings(max_examples=300, deadline=None)
    def test_empty_window_subset_of_green(self, rate, red, green, v_min):
        model = make_model(red, green, v_min)
        window = model.empty_window(rate)
        if window is not None:
            start, end = window
            assert red <= start < end <= red + green + 1e-9

    @given(rate=rates, red=reds, green=greens, v_min=v_mins)
    @settings(max_examples=200, deadline=None)
    def test_queue_grows_through_red(self, rate, red, green, v_min):
        assume(rate > 1e-4)
        model = make_model(red, green, v_min)
        early = model.queue_vehicles(red * 0.25, rate)
        late = model.queue_vehicles(red * 0.99, rate)
        assert late > early

    @given(rate=rates, red=reds, green=greens, v_min=v_mins)
    @settings(max_examples=100, deadline=None)
    def test_simulation_consistent_with_closed_form(self, rate, red, green, v_min):
        model = make_model(red, green, v_min)
        cycle = model.light.cycle_s
        trace = model.simulate(cycle, rate, dt_s=0.05)
        for frac in (0.3, 0.6, 0.9):
            t = cycle * frac
            idx = int(round(t / 0.05))
            assert trace.vehicles[idx] == pytest.approx(
                model.queue_vehicles(t, rate), abs=0.15
            )

    @given(rate=rates, red=reds, green=greens, v_min=v_mins)
    @settings(max_examples=200, deadline=None)
    def test_vm_discharge_never_exceeds_instant(self, rate, red, green, v_min):
        from repro.signal.vm import InstantDischargeModel

        light = TrafficLight(red_s=red, green_s=green)
        vm = VehicleMovementModel(light=light, v_min_ms=v_min, spacing_m=8.5, turn_ratio=0.8)
        instant = InstantDischargeModel(light=light, v_min_ms=v_min, spacing_m=8.5, turn_ratio=0.8)
        for t in np.linspace(0.0, light.cycle_s, 7):
            assert vm.discharged_vehicles(float(t)) <= instant.discharged_vehicles(float(t)) + 1e-9


class TestLightProperties:
    @given(
        red=reds,
        green=greens,
        offset=st.floats(min_value=-120.0, max_value=120.0),
        t=st.floats(min_value=0.0, max_value=1e4),
    )
    @settings(max_examples=300, deadline=None)
    def test_phase_partition(self, red, green, offset, t):
        light = TrafficLight(red_s=red, green_s=green, offset_s=offset)
        assert light.is_green(t) != light.is_red(t)

    @given(red=reds, green=greens, t=st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=300, deadline=None)
    def test_periodicity(self, red, green, t):
        light = TrafficLight(red_s=red, green_s=green)
        # Exact phase boundaries are ambiguous at float precision; step off.
        for probe in (t, t + light.cycle_s):
            phase = light.time_in_cycle(probe)
            assume(min(abs(phase - red), phase, light.cycle_s - phase) > 1e-6)
        assert light.is_green(t) == light.is_green(t + light.cycle_s)

    @given(red=reds, green=greens, t=st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=200, deadline=None)
    def test_next_green_is_green_and_minimal(self, red, green, t):
        light = TrafficLight(red_s=red, green_s=green)
        phase = light.time_in_cycle(t)
        assume(min(abs(phase - red), phase, light.cycle_s - phase) > 1e-6)
        start = light.next_green_start(t)
        assert start >= t
        assert light.is_green(start + 1e-6)
        if start > t:
            assert light.is_red(t)
