"""The engine layer: digests, the artifact store, and kernel equivalence.

Covers the PR's behavior-preservation contract from every side:

* digest stability (equal inputs hash equal; any build input change —
  and *only* build inputs — re-keys),
* LRU store semantics (hit/miss/eviction counters, recency order),
* bit-identical solutions with the store disabled, cold and warm, for
  whole trips and mid-route replans on both seed corridors,
* the stage kernels against a straightforward reference implementation
  on randomized lattices,
* zero-fault closed-loop transparency with the store threaded through
  the degradation ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.service import CloudPlannerService
from repro.core.dp import DpSolver
from repro.core.engine import (
    ArtifactStore,
    CorridorArtifacts,
    corridor_digest,
    expand_stage,
    first_per_group,
    select_labels,
)
from repro.core.planner import (
    BaselineDpPlanner,
    PlannerConfig,
    QueueAwareDpPlanner,
)
from repro.core.refine import CoarseToFineSolver
from repro.errors import ConfigurationError
from repro.resilience.client import ResilientPlanClient
from repro.resilience.ladder import TIER_QUEUE_DP, DegradationLadder
from repro.route.road import RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.signal.light import TrafficLight
from repro.units import kmh_to_ms, vehicles_per_hour_to_per_second
from repro.vehicle.params import VehicleParams, chevrolet_spark_ev

RATE = vehicles_per_hour_to_per_second(300.0)

GRID = dict(v_step_ms=1.0, s_step_m=50.0)


def _road(signal_light: TrafficLight = None, length_m: float = 1000.0) -> RoadSegment:
    light = signal_light if signal_light is not None else TrafficLight(red_s=20.0, green_s=20.0)
    return RoadSegment(
        name="digest test road",
        length_m=length_m,
        zones=[
            SpeedLimitZone(0.0, length_m, v_max_ms=kmh_to_ms(54.0), v_min_ms=kmh_to_ms(28.8))
        ],
        stop_signs=[StopSign(250.0)],
        signals=[SignalSite(position_m=600.0, light=light)],
    )


# ----------------------------------------------------------------------
# Digest stability
# ----------------------------------------------------------------------
class TestCorridorDigest:
    def test_equal_inputs_equal_digest(self, vehicle):
        a = corridor_digest(_road(), vehicle, **GRID)
        b = corridor_digest(_road(), vehicle, **GRID)
        assert a == b
        assert len(a) == 32  # blake2b, digest_size=16

    def test_every_build_input_rekeys(self, vehicle):
        base = corridor_digest(_road(), vehicle, **GRID)
        assert corridor_digest(_road(), vehicle, v_step_ms=0.5, s_step_m=50.0) != base
        assert corridor_digest(_road(), vehicle, v_step_ms=1.0, s_step_m=25.0) != base
        assert corridor_digest(_road(), vehicle, stop_dwell_s=5.0, **GRID) != base
        assert (
            corridor_digest(_road(), vehicle, enforce_min_speed=False, **GRID) != base
        )
        assert corridor_digest(_road(length_m=1200.0), vehicle, **GRID) != base
        heavier = VehicleParams(mass_kg=vehicle.mass_kg + 100.0)
        assert corridor_digest(_road(), heavier, **GRID) != base

    def test_signal_timing_does_not_rekey(self, vehicle):
        """Timing is a solve-time input: replans across phases share a build."""
        base = corridor_digest(_road(TrafficLight(red_s=20.0, green_s=20.0)), vehicle, **GRID)
        drifted = corridor_digest(
            _road(TrafficLight(red_s=33.0, green_s=12.0, offset_s=7.0)), vehicle, **GRID
        )
        assert base == drifted

    def test_build_stamps_matching_digest(self, vehicle):
        artifacts = CorridorArtifacts.build(_road(), vehicle, **GRID)
        assert artifacts.digest == corridor_digest(_road(), vehicle, **GRID)
        assert artifacts.n_segments == artifacts.positions.size - 1
        assert artifacts.nbytes > 0

    def test_mismatched_artifacts_rejected_by_solver(self, vehicle):
        artifacts = CorridorArtifacts.build(_road(), vehicle, **GRID)
        with pytest.raises(ConfigurationError):
            DpSolver(
                _road(), vehicle=vehicle, v_step_ms=0.5, s_step_m=50.0,
                artifacts=artifacts,
            )


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_hit_miss_counters(self, vehicle):
        store = ArtifactStore(capacity=4)
        first = store.get_or_build(_road(), vehicle, **GRID)
        again = store.get_or_build(_road(), vehicle, **GRID)
        assert again is first  # the very same arrays, not a rebuild
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
        assert stats.hit_rate == 0.5
        assert "hit rate 0.50" in stats.summary()

    def test_lru_eviction_order(self, vehicle):
        store = ArtifactStore(capacity=2)
        a = store.get_or_build(_road(), vehicle, v_step_ms=1.0, s_step_m=50.0)
        b = store.get_or_build(_road(), vehicle, v_step_ms=2.0, s_step_m=50.0)
        # Touch `a` so `b` becomes the least recently used...
        assert store.get(a.digest) is a
        store.get_or_build(_road(), vehicle, v_step_ms=1.0, s_step_m=100.0)
        # ...and is therefore the entry evicted by the third insert.
        assert a.digest in store
        assert b.digest not in store
        stats = store.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ArtifactStore(capacity=0)

    def test_clear_keeps_counters(self, vehicle):
        store = ArtifactStore()
        store.get_or_build(_road(), vehicle, **GRID)
        store.clear()
        assert len(store) == 0
        assert store.stats().misses == 1


# ----------------------------------------------------------------------
# Bit-identity: disabled vs cold vs warm store
# ----------------------------------------------------------------------
def _assert_same_solution(a, b):
    assert np.array_equal(a.profile.positions_m, b.profile.positions_m)
    assert np.array_equal(a.profile.speeds_ms, b.profile.speeds_ms)
    assert a.energy_j == b.energy_j
    assert a.trip_time_s == b.trip_time_s
    assert a.signal_arrivals == b.signal_arrivals


class TestBitIdentity:
    def _solutions(self, make_planner):
        """(disabled, cold, warm) plan/replan pairs from one factory."""
        store = ArtifactStore()
        planners = [
            make_planner(None),   # store disabled
            make_planner(store),  # cold store: this build populates it
            make_planner(store),  # warm store: served from cache
        ]
        out = []
        for planner in planners:
            plan = planner.plan(start_time_s=0.0, max_trip_time_s=290.0)
            replan = planner.replan(
                position_m=2000.0, speed_ms=8.0, time_s=170.0
            )
            out.append((plan, replan))
        assert store.stats().hits == 1  # the warm planner really hit
        return out

    def test_us25_queue_aware(self, us25, coarse_config):
        def make(store):
            return QueueAwareDpPlanner(
                us25, arrival_rates=RATE, config=coarse_config, store=store
            )

        disabled, cold, warm = self._solutions(make)
        for phase in ("plan", "replan"):
            k = 0 if phase == "plan" else 1
            _assert_same_solution(disabled[k], cold[k])
            _assert_same_solution(disabled[k], warm[k])

    def test_short_road_baseline(self, short_road, coarse_config):
        def make(store):
            return BaselineDpPlanner(short_road, config=coarse_config, store=store)

        store = ArtifactStore()
        reference = make(None).plan(start_time_s=0.0)
        cold = make(store).plan(start_time_s=0.0)
        warm = make(store).plan(start_time_s=0.0)
        _assert_same_solution(reference, cold)
        _assert_same_solution(reference, warm)
        assert store.stats().hits == 1

    def test_refiner_shares_fine_artifacts(self, short_road):
        store = ArtifactStore()
        with_store = CoarseToFineSolver(
            short_road, fine_v_step_ms=0.5, s_step_m=25.0, horizon_s=300.0, store=store
        )
        without = CoarseToFineSolver(
            short_road, fine_v_step_ms=0.5, s_step_m=25.0, horizon_s=300.0
        )
        _assert_same_solution(without.solve(), with_store.solve())
        # Two fine solves, one artifact build: the second solve reuses.
        first = with_store.solve()
        second = with_store.solve()
        _assert_same_solution(first, second)
        assert store.stats().misses == 2  # coarse grid + fine grid, once each


# ----------------------------------------------------------------------
# Stage kernels vs reference implementation
# ----------------------------------------------------------------------
def _reference_expand(lab_v, lab_t, lab_c, j_arr, j2_arr, e_arr, dt_arr):
    """Cross every label with its segment successors, one pair at a time."""
    src, cj2, cc, ct = [], [], [], []
    for j in np.unique(j_arr):
        succ = np.nonzero(j_arr == j)[0]
        labels_here = np.nonzero(lab_v == j)[0]
        if succ.size == 0 or labels_here.size == 0:
            continue
        for lab in labels_here:
            for k in succ:
                src.append(lab)
                cj2.append(j2_arr[k])
                cc.append(e_arr[k] + lab_c[lab])
                ct.append(dt_arr[k] + lab_t[lab])
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(cj2, dtype=np.int64),
        np.asarray(cc, dtype=float),
        np.asarray(ct, dtype=float),
    )


def _reference_select(cj2, cc, ct, start_time_s, t_bin_s, n_bins):
    """Cheapest and earliest chunk entry per (velocity, time-bin) group."""
    k2 = np.round((ct - start_time_s) / t_bin_s).astype(np.int64)
    groups = {}
    for i in range(cj2.size):
        groups.setdefault((int(cj2[i]), int(k2[i])), []).append(i)
    keep = set()
    for members in groups.values():
        keep.add(min(members, key=lambda i: (cc[i], ct[i], i)))
        keep.add(min(members, key=lambda i: (ct[i], cc[i], i)))
    return np.asarray(sorted(keep), dtype=np.int64)


class TestStageKernels:
    @pytest.mark.parametrize("seed", range(8))
    def test_expand_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n_levels = int(rng.integers(3, 12))
        n_labels = int(rng.integers(1, 30))
        n_pairs = int(rng.integers(1, 60))
        lab_v = rng.integers(0, n_levels, size=n_labels)
        lab_t = rng.uniform(0.0, 100.0, size=n_labels)
        lab_c = rng.uniform(0.0, 1e5, size=n_labels)
        # The kernels require CSR-ordered pairs (j_arr sorted ascending),
        # which is what np.nonzero over the feasibility mask produces.
        j_arr = np.sort(rng.integers(0, n_levels, size=n_pairs))
        j2_arr = rng.integers(0, n_levels, size=n_pairs)
        e_arr = rng.uniform(-1e3, 1e4, size=n_pairs)
        dt_arr = rng.uniform(0.5, 20.0, size=n_pairs)

        src, cj2, cc, ct = expand_stage(
            lab_v, lab_t, lab_c, j_arr, j2_arr, e_arr, dt_arr, n_levels
        )
        r_src, r_cj2, r_cc, r_ct = _reference_expand(
            lab_v, lab_t, lab_c, j_arr, j2_arr, e_arr, dt_arr
        )
        # Same multiset of expanded transitions (ordering is an internal
        # detail; the solver's selection step is order-aware, which the
        # end-to-end bit-identity tests above pin down).
        got = sorted(zip(src.tolist(), cj2.tolist(), cc.tolist(), ct.tolist()))
        want = sorted(zip(r_src.tolist(), r_cj2.tolist(), r_cc.tolist(), r_ct.tolist()))
        assert got == want

    @pytest.mark.parametrize("seed", range(8))
    def test_select_matches_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 200))
        n_levels = int(rng.integers(2, 10))
        cj2 = rng.integers(0, n_levels, size=n)
        cc = np.round(rng.uniform(0.0, 1e4, size=n), 1)  # force some cost ties
        ct = np.round(rng.uniform(0.0, 300.0, size=n), 0)  # and time-bin ties
        n_bins = 400
        sel = select_labels(cj2, cc, ct, 0.0, 1.0, n_bins)
        ref = _reference_select(cj2, cc, ct, 0.0, 1.0, n_bins)
        assert np.array_equal(np.sort(sel), ref)

    def test_first_per_group(self):
        groups = np.asarray([2, 0, 2, 1, 0, 2])
        order = np.argsort(groups, kind="stable")
        sel = first_per_group(groups, order)
        assert np.array_equal(np.sort(sel), [0, 1, 3])

    def test_empty_expand(self):
        src, cj2, cc, ct = expand_stage(
            np.asarray([0]), np.asarray([0.0]), np.asarray([0.0]),
            np.asarray([1]), np.asarray([2]),
            np.asarray([1.0]), np.asarray([1.0]), 3,
        )
        assert src.size == cj2.size == cc.size == ct.size == 0


# ----------------------------------------------------------------------
# Zero-fault closed loop with the store threaded through the ladder
# ----------------------------------------------------------------------
class TestClosedLoopWithStore:
    def test_zero_fault_laddered_drive_bit_identical(self, us25, coarse_config):
        def scenario():
            return Us25Scenario(
                road=us25, arrival_rate_vph=300.0, warmup_s=300.0, seed=13
            )

        direct_planner = QueueAwareDpPlanner(
            us25, arrival_rates=RATE, config=coarse_config
        )
        direct = ClosedLoopDriver(
            scenario(), direct_planner, replan_interval_s=20.0
        ).run(depart_s=300.0, max_trip_time_s=320.0)

        store = ArtifactStore()
        stored_planner = QueueAwareDpPlanner(
            us25, arrival_rates=RATE, config=coarse_config, store=store
        )
        client = ResilientPlanClient(CloudPlannerService(stored_planner))
        ladder = DegradationLadder(
            client, us25, arrival_rates=RATE, config=coarse_config
        )
        laddered = ClosedLoopDriver(
            scenario(), ladder=ladder, replan_interval_s=20.0, store=store
        ).run(depart_s=300.0, max_trip_time_s=320.0)

        assert ladder.store is store  # driver installed the shared store
        assert np.array_equal(
            direct.ev_trace.positions_m, laddered.ev_trace.positions_m
        )
        assert np.array_equal(direct.ev_trace.speeds_ms, laddered.ev_trace.speeds_ms)
        assert direct.ev_trace.energy().net_mah == laddered.ev_trace.energy().net_mah
        assert laddered.initial_tier == TIER_QUEUE_DP
        assert laddered.degraded_replans == 0

    def test_store_rejected_on_direct_path(self, us25, coarse_config):
        planner = QueueAwareDpPlanner(us25, arrival_rates=RATE, config=coarse_config)
        with pytest.raises(ConfigurationError):
            ClosedLoopDriver(
                Us25Scenario(road=us25, arrival_rate_vph=300.0, warmup_s=300.0),
                planner,
                store=ArtifactStore(),
            )


# ----------------------------------------------------------------------
# Satellite bugfix: pack voltage derives from the vehicle parameters
# ----------------------------------------------------------------------
class TestPackVoltageDefault:
    def test_solution_default_tracks_vehicle_params(self, short_road, coarse_config):
        solution = BaselineDpPlanner(short_road, config=coarse_config).plan(0.0)
        assert solution.pack_voltage_v == VehicleParams().battery.voltage_v

    def test_spark_ev_voltage_propagates(self, short_road, coarse_config):
        spark = chevrolet_spark_ev()
        solution = BaselineDpPlanner(
            short_road, vehicle=spark, config=coarse_config
        ).plan(0.0)
        assert solution.pack_voltage_v == spark.battery.voltage_v
