"""Longitudinal dynamics and consumption model (Eq. 1 and Eq. 3)."""

import numpy as np
import pytest

from repro.units import GRAVITY, kmh_to_ms
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams


@pytest.fixture(scope="module")
def model():
    return LongitudinalModel()


class TestDriveForce:
    def test_standstill_needs_no_force(self, model):
        assert model.drive_force(0.0, 0.0) == pytest.approx(0.0)

    def test_rolling_resistance_at_constant_speed(self, model):
        p = model.params
        expected_rolling = p.rolling_resistance * p.mass_kg * GRAVITY
        aero = 0.5 * p.air_density * p.frontal_area_m2 * p.drag_coefficient * 100.0
        assert model.drive_force(10.0, 0.0) == pytest.approx(expected_rolling + aero)

    def test_inertial_term(self, model):
        base = model.drive_force(10.0, 0.0)
        accel = model.drive_force(10.0, 1.0)
        assert accel - base == pytest.approx(model.params.mass_kg)

    def test_uphill_adds_gravity_component(self, model):
        grade = np.arctan(0.05)
        flat = model.drive_force(10.0, 0.0)
        hill = model.drive_force(10.0, 0.0, grade)
        extra = hill - flat
        gravity_term = model.params.mass_kg * GRAVITY * np.sin(grade)
        # Rolling resistance also shrinks slightly with cos(theta).
        assert extra == pytest.approx(gravity_term, rel=0.02)

    def test_downhill_can_be_negative(self, model):
        grade = -np.arctan(0.08)
        assert model.drive_force(5.0, 0.0, grade) < 0.0

    def test_aero_grows_quadratically(self, model):
        p = model.params
        f10 = model.drive_force(10.0, 0.0) - p.rolling_resistance * p.mass_kg * GRAVITY
        f20 = model.drive_force(20.0, 0.0) - p.rolling_resistance * p.mass_kg * GRAVITY
        assert f20 / f10 == pytest.approx(4.0)

    def test_array_broadcasting(self, model):
        speeds = np.asarray([0.0, 5.0, 10.0])
        forces = model.drive_force(speeds, 0.0)
        assert forces.shape == (3,)
        assert forces[0] == pytest.approx(0.0)


class TestElectricalLayer:
    def test_drawing_divides_by_efficiency(self, model):
        mech = model.mechanical_power(15.0, 1.0)
        elec = model.electrical_power(15.0, 1.0)
        assert elec == pytest.approx(mech / model.params.drivetrain_efficiency)

    def test_regen_multiplies_by_efficiencies(self, model):
        mech = model.mechanical_power(15.0, -1.5)
        assert mech < 0
        elec = model.electrical_power(15.0, -1.5)
        expected = mech * model.params.regen_efficiency * model.params.drivetrain_efficiency
        assert elec == pytest.approx(expected)
        assert abs(elec) < abs(mech)

    def test_consumption_rate_units(self, model):
        # 1 A draw equals 1000/3600 mAh per second.
        amps = model.consumption_rate_a(15.0, 0.5)
        mah_s = model.consumption_rate_mah_per_s(15.0, 0.5)
        assert mah_s == pytest.approx(amps * 1000.0 / 3600.0)

    def test_consumption_monotone_in_acceleration(self, model):
        accels = np.linspace(-1.5, 2.5, 17)
        rates = np.asarray([model.consumption_rate_a(12.0, a) for a in accels])
        assert np.all(np.diff(rates) > 0)

    def test_braking_regenerates_at_speed(self, model):
        assert model.consumption_rate_a(15.0, -1.5) < 0.0

    def test_fig3_shape_negative_region_only_under_braking(self, model):
        speeds = kmh_to_ms(np.linspace(5.0, 120.0, 24))
        cruise = np.asarray(model.consumption_rate_a(speeds, 0.0))
        assert np.all(cruise > 0)

    def test_no_regen_vehicle(self):
        params = VehicleParams(regen_efficiency=0.0)
        model = LongitudinalModel(params)
        assert model.consumption_rate_a(15.0, -1.5) == pytest.approx(0.0)


class TestSegmentEnergy:
    def test_cruise_segment_energy_matches_power_times_time(self, model):
        v = 12.0
        energy = model.segment_energy_j(v, v, 100.0)
        power = model.electrical_power(v, 0.0)
        assert energy == pytest.approx(power * (100.0 / v), rel=1e-9)

    def test_zero_endpoints_are_infinite(self, model):
        assert np.isinf(model.segment_energy_j(0.0, 0.0, 50.0))

    def test_acceleration_segment_costs_more_than_cruise(self, model):
        accel = model.segment_energy_j(10.0, 14.0, 100.0)
        cruise = model.segment_energy_j(12.0, 12.0, 100.0)
        assert accel > cruise

    def test_deceleration_recovers_energy(self, model):
        decel = model.segment_energy_j(16.0, 10.0, 100.0)
        cruise = model.segment_energy_j(13.0, 13.0, 100.0)
        assert decel < cruise

    def test_accel_then_brake_costs_net_energy(self, model):
        """Regen losses make speed cycling strictly wasteful (no free lunch)."""
        up = model.segment_energy_j(10.0, 15.0, 100.0)
        down = model.segment_energy_j(15.0, 10.0, 100.0)
        steady = 2 * model.segment_energy_j(10.0, 10.0, 100.0)
        assert up + down > 0
        # Cycling 10->15->10 must cost at least as much as a rough steady
        # reference once regen losses are accounted for.
        assert up + down > 0.8 * steady

    def test_rejects_nonpositive_distance(self, model):
        with pytest.raises(ValueError):
            model.segment_energy_j(10.0, 10.0, 0.0)

    def test_charge_conversion(self, model):
        energy = model.segment_energy_j(12.0, 12.0, 100.0)
        charge = model.segment_charge_mah(12.0, 12.0, 100.0)
        volts = model.params.battery.voltage_v
        assert charge == pytest.approx(energy / volts * 1000.0 / 3600.0)
