"""Historical-average and last-value predictors."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.traffic.baselines import HistoricalAveragePredictor, LastValuePredictor
from repro.traffic.dataset import train_test_split_by_hour
from repro.traffic.volume import VolumeGenerator


@pytest.fixture(scope="module")
def datasets():
    series = VolumeGenerator(seed=2, incident_rate_per_day=0.0).generate(28)
    return train_test_split_by_hour(series, test_hours=72, window=12)


class TestHistoricalAverage:
    def test_requires_fit(self, datasets):
        _, test = datasets
        with pytest.raises(PredictionError):
            HistoricalAveragePredictor().predict(test)

    def test_prediction_is_slot_mean(self, datasets):
        train, _ = datasets
        model = HistoricalAveragePredictor().fit(train)
        pred = model.predict(train)
        # For any slot, all predictions must be identical and equal to the
        # mean of the targets in that slot.
        hours = train.target_hours
        slot = (hours // 24 % 7 == 2) & (hours % 24 == 8)  # Wednesday 08:00
        assert slot.sum() >= 2
        assert np.allclose(pred[slot], train.targets[slot].mean())

    def test_captures_diurnal_shape(self, datasets):
        train, test = datasets
        model = HistoricalAveragePredictor().fit(train)
        pred = model.predict(test)
        err = np.mean(np.abs(pred - test.targets))
        assert err < 0.1  # noise-free generator => tight fit

    def test_fit_returns_self(self, datasets):
        train, _ = datasets
        model = HistoricalAveragePredictor()
        assert model.fit(train) is model


class TestLastValue:
    def test_prediction_equals_last_window_entry(self, datasets):
        _, test = datasets
        pred = LastValuePredictor().fit(test).predict(test)
        np.testing.assert_array_equal(pred, test.features[:, test.window - 1])

    def test_error_nonzero_on_changing_series(self, datasets):
        _, test = datasets
        pred = LastValuePredictor().predict(test)
        assert np.mean(np.abs(pred - test.targets)) > 0.0
