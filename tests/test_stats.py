"""Bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis.stats import Interval, bootstrap_mean, bootstrap_paired_savings


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        interval = bootstrap_mean([1.0, 2.0, 3.0, 4.0])
        assert interval.estimate == pytest.approx(2.5)

    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10.0, 2.0, size=40)
        interval = bootstrap_mean(data, confidence=0.9)
        assert interval.lower <= interval.estimate <= interval.upper

    def test_interval_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = bootstrap_mean(rng.normal(0, 1, 10), seed=3)
        large = bootstrap_mean(rng.normal(0, 1, 1000), seed=3)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_deterministic_under_seed(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0]
        a = bootstrap_mean(data, seed=7)
        b = bootstrap_mean(data, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_degenerate_sample(self):
        interval = bootstrap_mean([5.0] * 10)
        assert interval.lower == interval.upper == interval.estimate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)

    def test_str_format(self):
        text = str(Interval(10.0, 9.0, 11.0, 0.9))
        assert "10.0" in text and "[9.0, 11.0]" in text


class TestPairedSavings:
    def test_known_saving(self):
        interval = bootstrap_paired_savings([80.0] * 8, [100.0] * 8)
        assert interval.estimate == pytest.approx(20.0)
        assert interval.lower == pytest.approx(20.0)

    def test_pairing_matters(self):
        """Paired resampling keeps correlated noise out of the interval."""
        rng = np.random.default_rng(5)
        base = rng.uniform(900.0, 1500.0, size=30)  # departure-driven spread
        cand = base * 0.85  # a constant 15% saving
        interval = bootstrap_paired_savings(cand, base)
        assert interval.estimate == pytest.approx(15.0, abs=0.01)
        assert interval.upper - interval.lower < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_paired_savings([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            bootstrap_paired_savings([], [])
        with pytest.raises(ValueError):
            bootstrap_paired_savings([1.0], [0.0])
