"""Resilient cloud client: deadlines, retries, breaker transitions."""

import threading

import pytest

from repro.cloud.messages import PlanRequest, PlanResponse
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
    ServerOverloadError,
    WireProtocolError,
)
from repro.resilience.client import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ResilientPlanClient,
)
from repro.resilience.faults import CloudFaultModel, OutageWindow


class StubService:
    """Answers every request with a canned response, counting calls."""

    def __init__(self):
        self.calls = 0

    def request(self, req):
        self.calls += 1
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=None,
            energy_mah=100.0,
            trip_time_s=200.0,
            cache_hit=False,
            compute_time_s=0.01,
        )


class InfeasibleService:
    """A reachable service whose planner always says infeasible."""

    def __init__(self):
        self.calls = 0

    def request(self, req):
        self.calls += 1
        raise PlanningFailedError(
            "no feasible plan", vehicle_id=req.vehicle_id, depart_s=req.depart_s
        )


def _req(depart_s=0.0, **kwargs):
    return PlanRequest(vehicle_id="ev", depart_s=depart_s, **kwargs)


class TestPassThrough:
    def test_no_fault_serves_first_attempt(self):
        service = StubService()
        client = ResilientPlanClient(service)
        response = client.request(_req())
        assert response.energy_mah == 100.0
        assert service.calls == 1
        stats = client.stats
        assert (stats.requests, stats.served, stats.attempts) == (1, 1, 1)
        assert stats.retries == stats.drops == stats.failures == 0
        assert stats.breaker_state == BREAKER_CLOSED
        assert stats.transitions == []

    def test_now_defaults_to_depart(self):
        fault = CloudFaultModel(outages=(OutageWindow(0.0, 100.0),))
        client = ResilientPlanClient(StubService(), fault=fault, max_attempts=1)
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req(depart_s=50.0))
        assert excinfo.value.reason == "outage"
        client.request(_req(depart_s=150.0))
        assert client.stats.served == 1

    def test_validation(self):
        service = StubService()
        with pytest.raises(ConfigurationError):
            ResilientPlanClient(service, deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilientPlanClient(service, max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResilientPlanClient(service, backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            ResilientPlanClient(service, breaker_threshold=0)
        with pytest.raises(ConfigurationError):
            ResilientPlanClient(service, breaker_cooldown_s=0.0)


class TestRetries:
    def test_total_loss_exhausts_attempts(self):
        service = StubService()
        fault = CloudFaultModel(drop_rate=1.0, seed=1)
        client = ResilientPlanClient(service, fault=fault, max_attempts=3)
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req())
        assert excinfo.value.attempts == 3
        assert excinfo.value.reason == "drop"
        assert service.calls == 0
        stats = client.stats
        assert stats.attempts == 3
        assert stats.retries == 2
        assert stats.drops == 3
        assert stats.failures == 1

    def test_retry_recovers_after_outage(self):
        # First attempt lands inside the outage; the backoff wait pushes
        # the retry past its end.
        service = StubService()
        fault = CloudFaultModel(outages=(OutageWindow(0.0, 10.0),), seed=1)
        client = ResilientPlanClient(
            service,
            fault=fault,
            deadline_s=60.0,
            max_attempts=2,
            backoff_base_s=10.0,
        )
        response = client.request(_req(depart_s=5.0))
        assert response is not None
        assert service.calls == 1
        stats = client.stats
        assert stats.retries == 1
        assert stats.outage_drops == 1
        assert stats.served == 1
        assert stats.failures == 0

    def test_backoff_bounds(self):
        client = ResilientPlanClient(
            StubService(),
            fault=CloudFaultModel(seed=3),
            backoff_base_s=0.2,
            backoff_factor=2.0,
            backoff_jitter=0.5,
        )
        for index in range(20):
            for attempt in range(1, 5):
                wait = client.backoff_s(index, attempt)
                floor = 0.2 * 2.0 ** (attempt - 1)
                assert floor <= wait <= floor * 1.5

    def test_backoff_deterministic_and_jittered(self):
        client = ResilientPlanClient(StubService(), fault=CloudFaultModel(seed=3))
        assert client.backoff_s(0, 1) == client.backoff_s(0, 1)
        waits = {client.backoff_s(i, 1) for i in range(10)}
        assert len(waits) > 1

    def test_latency_exhausts_deadline(self):
        service = StubService()
        fault = CloudFaultModel(latency_base_s=10.0, seed=1)
        client = ResilientPlanClient(service, fault=fault, deadline_s=5.0)
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req())
        assert excinfo.value.reason == "deadline"
        assert service.calls == 0
        assert client.stats.deadline_exceeded == 1


class TestBreaker:
    def _failing_client(self, service=None, **kwargs):
        fault = CloudFaultModel(drop_rate=1.0, seed=2)
        defaults = dict(
            fault=fault,
            max_attempts=1,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
        )
        defaults.update(kwargs)
        return ResilientPlanClient(service or StubService(), **defaults)

    def test_threshold_trips_open(self):
        client = self._failing_client()
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        stats = client.stats
        assert stats.breaker_state == BREAKER_OPEN
        assert stats.transitions == [(10.0, BREAKER_CLOSED, BREAKER_OPEN)]
        assert stats.breaker_opens == 1

    def test_open_fast_fails_without_wire_attempts(self):
        service = StubService()
        client = self._failing_client(service)
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        attempts_before = client.stats.attempts
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req(), now_s=20.0)
        assert excinfo.value.reason == "breaker_open"
        assert excinfo.value.attempts == 0
        assert client.stats.attempts == attempts_before
        assert client.stats.fast_fails == 1
        assert service.calls == 0

    def test_half_open_probe_success_closes(self):
        service = StubService()
        fault = CloudFaultModel(outages=(OutageWindow(0.0, 30.0),), seed=2)
        client = ResilientPlanClient(
            service,
            fault=fault,
            max_attempts=1,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
        )
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        assert client.stats.breaker_state == BREAKER_OPEN
        # Past the cooldown and past the outage: the probe succeeds.
        response = client.request(_req(), now_s=100.0)
        assert response is not None
        assert service.calls == 1
        states = [to for _, _, to in client.stats.transitions]
        assert states == [BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED]

    def test_half_open_probe_failure_reopens(self):
        service = StubService()
        client = self._failing_client(service, max_attempts=3)
        # max_attempts=3 but a drop_rate=1.0 link: trip the breaker.
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        attempts_before = client.stats.attempts
        with pytest.raises(CloudUnavailableError):
            client.request(_req(), now_s=100.0)
        # The half-open probe gets exactly one wire attempt, not three.
        assert client.stats.attempts == attempts_before + 1
        states = [to for _, _, to in client.stats.transitions]
        assert states == [BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_OPEN]
        # Cooldown restarts from the failed probe.
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req(), now_s=110.0)
        assert excinfo.value.reason == "breaker_open"

    def test_success_resets_consecutive_failures(self):
        # fail, fail-below-threshold, succeed, then the counter restarts.
        service = StubService()
        fault = CloudFaultModel(outages=(OutageWindow(0.0, 5.0), OutageWindow(20.0, 25.0)))
        client = ResilientPlanClient(
            service, fault=fault, max_attempts=1, breaker_threshold=2
        )
        with pytest.raises(CloudUnavailableError):
            client.request(_req(), now_s=0.0)
        client.request(_req(), now_s=10.0)  # success resets the streak
        with pytest.raises(CloudUnavailableError):
            client.request(_req(), now_s=20.0)
        assert client.stats.breaker_state == BREAKER_CLOSED


class TestPlanningFailure:
    def test_infeasible_propagates_without_tripping_breaker(self):
        service = InfeasibleService()
        client = ResilientPlanClient(service, breaker_threshold=1)
        for t in (0.0, 10.0, 20.0):
            with pytest.raises(PlanningFailedError):
                client.request(_req(), now_s=t)
        stats = client.stats
        assert service.calls == 3
        assert stats.served == 3
        assert stats.failures == 0
        assert stats.breaker_state == BREAKER_CLOSED
        assert stats.transitions == []

    def test_infeasible_answer_closes_half_open_breaker(self):
        # A PlanningFailedError proves the wire works: it should close a
        # half-open breaker just like a plan would.
        service = InfeasibleService()
        fault = CloudFaultModel(outages=(OutageWindow(0.0, 30.0),))
        client = ResilientPlanClient(
            service,
            fault=fault,
            max_attempts=1,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
        )
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        with pytest.raises(PlanningFailedError):
            client.request(_req(), now_s=100.0)
        assert client.stats.breaker_state == BREAKER_CLOSED


class FlakyTransport:
    """A service that fails like a real network transport, then recovers.

    Fails the first ``failures`` calls with the given error factory —
    the shape :class:`~repro.cloud.netclient.NetworkPlanTransport`
    produces — and serves a canned plan afterwards.
    """

    def __init__(self, failures, make_error):
        self.calls = 0
        self.failures = failures
        self.make_error = make_error

    def request(self, req):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.make_error(req)
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=None,
            energy_mah=100.0,
            trip_time_s=200.0,
            cache_hit=False,
            compute_time_s=0.01,
        )


class TestTransportErrors:
    """The service itself raising transport errors (a real net client)."""

    def test_busy_shed_is_retried_and_counted(self):
        service = FlakyTransport(
            2, lambda req: ServerOverloadError("shed", vehicle_id=req.vehicle_id)
        )
        client = ResilientPlanClient(service, max_attempts=3, deadline_s=60.0)
        response = client.request(_req())
        assert response.energy_mah == 100.0
        assert service.calls == 3
        stats = client.stats
        assert stats.transport_errors == 2
        assert stats.busy_rejections == 2
        assert stats.retries == 2
        assert stats.failures == 0

    def test_persistent_transport_failure_exhausts_and_keeps_reason(self):
        def reset(req):
            return CloudUnavailableError(
                "reset", vehicle_id=req.vehicle_id, attempts=1, reason="connection_reset"
            )

        service = FlakyTransport(99, reset)
        client = ResilientPlanClient(
            service, max_attempts=3, deadline_s=60.0, breaker_threshold=1
        )
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req())
        assert excinfo.value.reason == "connection_reset"
        assert service.calls == 3
        assert client.stats.transport_errors == 3
        assert client.stats.busy_rejections == 0
        assert client.stats.failures == 1
        assert client.stats.breaker_state == BREAKER_OPEN

    def test_server_protocol_rejection_propagates_without_retry(self):
        # The server answered and judged the request defective: not a
        # transport failure, so no retries and no breaker damage.
        service = FlakyTransport(99, lambda req: WireProtocolError("bad request"))
        client = ResilientPlanClient(service, breaker_threshold=1)
        for t in (0.0, 10.0):
            with pytest.raises(WireProtocolError):
                client.request(_req(), now_s=t)
        assert service.calls == 2  # one wire attempt each, no retries
        assert client.stats.breaker_state == BREAKER_CLOSED
        assert client.stats.transitions == []


class GateService:
    """Fails on demand; when healthy, blocks until released.

    Lets a test hold one request in flight inside the service while
    other threads race the breaker.
    """

    def __init__(self):
        self.calls = 0
        self.fail = True
        self.entered = threading.Event()
        self.release = threading.Event()

    def request(self, req):
        self.calls += 1
        if self.fail:
            raise CloudUnavailableError("down", reason="connection_reset")
        self.entered.set()
        assert self.release.wait(5.0), "test forgot to release the gate"
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=None,
            energy_mah=100.0,
            trip_time_s=200.0,
            cache_hit=False,
            compute_time_s=0.01,
        )


class TestHalfOpenSingleProbe:
    """Half-open must admit exactly one probe, even under races."""

    def _tripped_client(self, service):
        client = ResilientPlanClient(
            service,
            max_attempts=1,
            breaker_threshold=2,
            breaker_cooldown_s=60.0,
        )
        for t in (0.0, 10.0):
            with pytest.raises(CloudUnavailableError):
                client.request(_req(), now_s=t)
        assert client.stats.breaker_state == BREAKER_OPEN
        return client

    def test_concurrent_callers_get_one_probe(self):
        service = GateService()
        client = self._tripped_client(service)
        service.fail = False
        calls_after_trip = service.calls

        outcome = {}

        def probe():
            try:
                outcome["response"] = client.request(_req(), now_s=100.0)
            except Exception as exc:  # pragma: no cover - failure detail
                outcome["error"] = exc

        prober = threading.Thread(target=probe)
        prober.start()
        assert service.entered.wait(5.0), "probe never reached the wire"
        # The probe is in flight inside the service: a second caller
        # arriving half-open must fast-fail, not join the probe.
        with pytest.raises(CloudUnavailableError) as excinfo:
            client.request(_req(), now_s=101.0)
        assert excinfo.value.reason == "breaker_open"
        assert service.calls == calls_after_trip + 1  # exactly one probe
        service.release.set()
        prober.join(timeout=5.0)
        assert "response" in outcome, outcome.get("error")
        assert client.stats.breaker_state == BREAKER_CLOSED
        # With the breaker closed again, callers flow normally.
        client.request(_req(), now_s=102.0)
        assert service.calls == calls_after_trip + 2

    def test_racing_threads_admit_exactly_one(self):
        # Two threads race _breaker_admits at the same instant, both
        # past the cooldown: exactly one transitions open -> half_open
        # and probes; the other fast-fails.
        service = GateService()
        client = self._tripped_client(service)
        service.fail = False
        calls_after_trip = service.calls
        service.release.set()  # probes answer immediately

        barrier = threading.Barrier(2)
        results = []

        def racer():
            barrier.wait()
            try:
                client.request(_req(), now_s=100.0)
                results.append("served")
            except CloudUnavailableError as exc:
                results.append(exc.reason)

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert sorted(results) == ["breaker_open", "served"] or results == [
            "served",
            "served",
        ], results
        # If both raced before the probe finished, only one may have
        # touched the wire; if the winner finished first, the loser was
        # served against a closed breaker — either way the wire saw at
        # most one request per caller and never two concurrent probes.
        assert service.calls - calls_after_trip == results.count("served")
        assert client.stats.fast_fails == results.count("breaker_open")
