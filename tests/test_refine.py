"""Coarse-to-fine DP acceleration."""

import pytest

from repro.core.constraints import check_profile
from repro.core.dp import DpSolver
from repro.core.refine import CoarseToFineSolver
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def solvers(plain_road):
    fine = DpSolver(plain_road, v_step_ms=0.5, s_step_m=25.0, horizon_s=300.0)
    c2f = CoarseToFineSolver(
        plain_road,
        fine_v_step_ms=0.5,
        coarse_factor=4,
        band_ms=3.0,
        s_step_m=25.0,
        horizon_s=300.0,
    )
    return fine, c2f


class TestCoarseToFine:
    def test_solution_feasible(self, solvers, plain_road):
        _, c2f = solvers
        solution = c2f.solve(max_trip_time_s=150.0)
        assert check_profile(solution.profile, plain_road).ok

    def test_quality_close_to_full_solve(self, solvers):
        fine, c2f = solvers
        full = fine.solve(max_trip_time_s=150.0)
        fast = c2f.solve(max_trip_time_s=150.0)
        assert fast.energy_j <= full.energy_j * 1.05 + 1.0

    def test_fine_pass_expands_fewer_transitions(self, solvers):
        fine, c2f = solvers
        full = fine.solve(max_trip_time_s=150.0)
        c2f.solve(max_trip_time_s=150.0)
        stats = c2f.last_stats
        assert stats is not None
        assert stats.fine_transitions < full.expanded_transitions

    def test_stats_populated(self, solvers):
        _, c2f = solvers
        c2f.solve(max_trip_time_s=150.0)
        stats = c2f.last_stats
        assert stats.coarse_time_s > 0
        assert stats.fine_time_s > 0
        assert stats.total_time_s == pytest.approx(
            stats.coarse_time_s + stats.fine_time_s
        )

    def test_validation(self, plain_road):
        with pytest.raises(ConfigurationError):
            CoarseToFineSolver(plain_road, coarse_factor=1)
        with pytest.raises(ConfigurationError):
            CoarseToFineSolver(plain_road, fine_v_step_ms=1.0, coarse_factor=4, band_ms=2.0)

    def test_with_window_constraints(self, short_road):
        from repro.core.cost import WindowSet
        from repro.core.dp import TimeWindowConstraint
        from repro.signal.queue import QueueWindow

        c2f = CoarseToFineSolver(
            short_road, fine_v_step_ms=0.5, s_step_m=25.0, horizon_s=300.0
        )
        constraint = TimeWindowConstraint(
            position_m=600.0,
            windows=WindowSet([QueueWindow(45.0, 60.0), QueueWindow(85.0, 100.0)]),
        )
        solution = c2f.solve(constraints=[constraint], max_trip_time_s=200.0)
        assert solution.windows_hit[600.0]
