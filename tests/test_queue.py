"""Queue-length (QL) model — Eq. 6, t_star and the T_q windows."""

import numpy as np
import pytest

from repro.signal.light import TrafficLight
from repro.signal.queue import BaselineQueueModel, QueueLengthModel, QueueWindow
from repro.signal.vm import VehicleMovementModel
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(153.0)


@pytest.fixture
def light():
    return TrafficLight(red_s=30.0, green_s=30.0)


@pytest.fixture
def model(light):
    vm = VehicleMovementModel(
        light=light, v_min_ms=11.11, a_max_ms2=2.5, spacing_m=8.5, turn_ratio=0.7636
    )
    return QueueLengthModel(vm)


class TestQueueEq6:
    def test_linear_growth_during_red(self, model):
        # Condition (i): L_q = V_in * t (in vehicles).
        assert model.queue_vehicles(10.0, RATE) == pytest.approx(RATE * 10.0)
        assert model.queue_vehicles(30.0, RATE) == pytest.approx(RATE * 30.0)

    def test_queue_shrinks_during_discharge(self, model):
        before = model.queue_vehicles(30.0, RATE)
        during = model.queue_vehicles(32.0, RATE)
        assert 0.0 <= during < before

    def test_queue_zero_after_t_star(self, model):
        t_star = model.clear_time(RATE)
        assert t_star is not None
        assert model.queue_vehicles(t_star + 0.5, RATE) == 0.0
        assert model.queue_vehicles(59.0, RATE) == 0.0

    def test_queue_length_in_metres(self, model):
        vehicles = model.queue_vehicles(30.0, RATE)
        assert model.queue_length_m(30.0, RATE) == pytest.approx(vehicles * 8.5)

    def test_queue_never_negative(self, model):
        for t in np.linspace(0.0, 60.0, 121):
            assert model.queue_vehicles(float(t), RATE) >= 0.0

    def test_zero_arrivals_clear_at_green(self, model):
        assert model.clear_time(0.0) == pytest.approx(30.0)

    def test_rejects_negative_inputs(self, model):
        with pytest.raises(ValueError):
            model.queue_vehicles(-1.0, RATE)
        with pytest.raises(ValueError):
            model.queue_vehicles(1.0, -RATE)
        with pytest.raises(ValueError):
            model.clear_time(-1.0)


class TestClearTime:
    def test_t_star_after_green_onset(self, model):
        t_star = model.clear_time(RATE)
        assert 30.0 < t_star < 60.0

    def test_t_star_grows_with_arrival_rate(self, model):
        light_rate = vehicles_per_hour_to_per_second(100.0)
        heavy_rate = vehicles_per_hour_to_per_second(600.0)
        assert model.clear_time(heavy_rate) > model.clear_time(light_rate)

    def test_oversaturation_returns_none(self, light):
        # Tiny v_min and huge arrivals: green can't absorb the queue.
        vm = VehicleMovementModel(
            light=light, v_min_ms=0.5, a_max_ms2=0.5, spacing_m=8.5, turn_ratio=1.0
        )
        model = QueueLengthModel(vm)
        assert model.clear_time(vehicles_per_hour_to_per_second(2000.0)) is None
        assert model.empty_window(vehicles_per_hour_to_per_second(2000.0)) is None

    def test_baseline_clears_earlier(self, light, model):
        baseline = BaselineQueueModel(
            light, v_min_ms=11.11, spacing_m=8.5, turn_ratio=0.7636
        )
        assert baseline.clear_time(RATE) < model.clear_time(RATE)

    def test_t_star_solution_is_consistent(self, model):
        """At t_star, cumulative arrivals equal cumulative discharge."""
        t_star = model.clear_time(RATE)
        arrived = RATE * t_star
        discharged = model.discharge.discharged_vehicles(t_star)
        assert arrived == pytest.approx(discharged, rel=1e-9)


class TestWindows:
    def test_empty_window_within_green(self, model):
        window = model.empty_window(RATE)
        assert window is not None
        start, end = window
        assert 30.0 <= start < end <= 60.0

    def test_absolute_windows_repeat_per_cycle(self, model):
        windows = model.empty_windows(0.0, 180.0, RATE)
        assert len(windows) == 3
        t_star = model.clear_time(RATE)
        for i, win in enumerate(windows):
            assert win.start_s == pytest.approx(i * 60.0 + t_star)
            assert win.end_s == pytest.approx((i + 1) * 60.0)

    def test_windows_respect_light_offset(self):
        light = TrafficLight(red_s=30.0, green_s=30.0, offset_s=15.0)
        vm = VehicleMovementModel(light=light, v_min_ms=11.11)
        model = QueueLengthModel(vm)
        windows = model.empty_windows(0.0, 120.0, RATE)
        t_star = model.clear_time(RATE)
        # The cycle containing t=0 started at -45 s (offset 15, cycle 60);
        # its queue-free window [-45 + t_star, 15) is clipped at the query
        # start, and the next cycle's window follows the offset.
        assert windows[0].start_s == pytest.approx(0.0)
        assert windows[0].end_s == pytest.approx(15.0)
        assert windows[1].start_s == pytest.approx(15.0 + t_star)

    def test_callable_rate_sampled_per_cycle(self, model):
        def rate(t_abs: float) -> float:
            return RATE if t_abs < 60.0 else vehicles_per_hour_to_per_second(600.0)

        windows = model.empty_windows(0.0, 120.0, rate)
        assert windows[1].start_s - 60.0 > windows[0].start_s  # heavier => later

    def test_window_validation(self):
        with pytest.raises(Exception):
            QueueWindow(10.0, 10.0)
        win = QueueWindow(1.0, 2.0)
        assert win.contains(1.0)
        assert not win.contains(2.0)
        assert win.duration_s == pytest.approx(1.0)


class TestSimulateTrace:
    def test_matches_closed_form_single_cycle(self, model):
        trace = model.simulate(60.0, RATE, dt_s=0.01)
        for t in (10.0, 25.0, 31.0, 45.0):
            idx = int(round(t / 0.01))
            expected = model.queue_vehicles(t, RATE)
            assert trace.vehicles[idx] == pytest.approx(expected, abs=0.05)

    def test_residual_carryover_when_oversaturated(self, light):
        vm = VehicleMovementModel(light=light, v_min_ms=1.0, a_max_ms2=0.5, spacing_m=8.5)
        model = QueueLengthModel(vm)
        heavy = vehicles_per_hour_to_per_second(1500.0)
        trace = model.simulate(300.0, heavy, dt_s=0.1)
        # Queue at each cycle start grows: the corridor saturates.
        starts = [trace.vehicles[int(k * 60.0 / 0.1)] for k in range(1, 5)]
        assert all(b > a for a, b in zip(starts, starts[1:]))

    def test_empty_windows_extraction(self, model):
        trace = model.simulate(120.0, RATE, dt_s=0.05)
        windows = trace.empty_windows(min_duration_s=5.0)
        assert windows
        t_star = model.clear_time(RATE)
        assert windows[0].end_s >= 59.0
        # Trace windows should bracket the analytic clear time.
        assert any(abs(w.start_s - t_star) < 2.0 for w in windows[:2])

    def test_simulate_validation(self, model):
        with pytest.raises(ValueError):
            model.simulate(-1.0, RATE)
        with pytest.raises(ValueError):
            model.simulate(10.0, RATE, dt_s=0.0)
        with pytest.raises(ValueError):
            model.simulate(10.0, RATE, initial_queue=-1.0)
        with pytest.raises(ValueError):
            model.simulate(10.0, lambda t: -1.0)

    def test_length_m_property(self, model):
        trace = model.simulate(30.0, RATE, dt_s=0.5)
        assert np.allclose(trace.length_m, trace.vehicles * 8.5)
