"""The ext-guard experiment: both campaigns must contain every fault."""

import pytest

from repro.experiments import ext_guard
from repro.experiments.runner import EXPERIMENTS


@pytest.fixture(scope="module")
def result():
    config = ext_guard.GuardConfig(corruption_rates=(0.0, 1.0), seeds=(13,))
    return ext_guard.run(config)


class TestInputCampaign:
    def test_no_corruption_is_silently_accepted(self, result):
        assert result.input_rows
        for row in result.input_rows:
            assert row.cases > 0
            assert row.silently_accepted == 0, row.kind
            assert row.rejected_strict == row.cases, row.kind

    def test_repair_mode_salvages_or_rejects_every_case(self, result):
        for row in result.input_rows:
            assert row.repaired + row.rejected_repair == row.cases, row.kind
            assert row.repaired > 0, f"{row.kind}: corpus has no repairable cases"

    def test_all_three_input_kinds_covered(self, result):
        assert {row.kind for row in result.input_rows} == {"road", "trace", "volume"}


class TestPlanCampaign:
    def test_zero_rate_guard_is_invisible(self, result):
        clean = next(r for r in result.plan_rows if r.rate == 0.0)
        assert clean.corrupted == 0
        assert clean.plans_checked > 0
        assert clean.plans_repaired == 0
        assert clean.plans_rejected == 0
        assert clean.safe_stops == 0
        assert clean.completed[0] == clean.completed[1]

    def test_full_rate_every_corruption_contained(self, result):
        hot = next(r for r in result.plan_rows if r.rate == 1.0)
        assert hot.corrupted > 0
        assert hot.plans_rejected + hot.plans_repaired > 0
        assert hot.violation_counts
        assert hot.completed[0] == hot.completed[1]
        # Rejections pushed the loop onto local tiers.
        degraded = sum(
            n for tier, n in hot.tier_counts.items() if tier != "queue_dp"
        )
        assert degraded > 0

    def test_report_renders_success_verdict(self, result):
        text = ext_guard.report(result)
        assert "GUARD FAILURE" not in text
        assert "no corrupted input accepted" in text
        for row in result.plan_rows:
            assert f"{row.rate:.2f}" in text


def test_registered_with_the_runner():
    assert "ext-guard" in EXPERIMENTS
    run_fn, report_fn = EXPERIMENTS["ext-guard"]
    assert run_fn is ext_guard.run
    assert report_fn is ext_guard.report
