"""Corridor registry: immutable specs, lazy runtimes, structural binding."""

from __future__ import annotations

import threading

import pytest

from repro.cloud.messages import DEFAULT_CORRIDOR_ID, PlanRequest
from repro.cloud.registry import (
    PLANNER_KINDS,
    CorridorCatalog,
    CorridorSpec,
    builtin_catalog,
)
from repro.errors import (
    ConfigurationError,
    InputValidationError,
    UnknownCorridorError,
    UnknownScenarioError,
    UnknownVehicleError,
)
from repro.vehicle.catalog import DEFAULT_VEHICLE_ID, get_vehicle
from repro.vehicle.scenarios import get_scenario


@pytest.fixture()
def catalog(coarse_config):
    return builtin_catalog(config=coarse_config)


class TestCorridorSpec:
    def test_rejects_bad_fields(self, us25):
        with pytest.raises(ConfigurationError):
            CorridorSpec(corridor_id="", road=us25)
        with pytest.raises(ConfigurationError):
            CorridorSpec(corridor_id="x", road=us25, planner="psychic")
        with pytest.raises(ConfigurationError):
            CorridorSpec(corridor_id="x", road=us25, arrival_rate_vph=-1.0)

    def test_builds_every_planner_kind(self, short_road, coarse_config):
        for kind in PLANNER_KINDS:
            spec = CorridorSpec(
                corridor_id="x", road=short_road, planner=kind, config=coarse_config
            )
            planner = spec.build_planner()
            assert planner.plan(start_time_s=0.0).trip_time_s > 0


class TestCatalog:
    def test_duplicate_registration_rejected(self, us25, coarse_config):
        catalog = CorridorCatalog()
        spec = CorridorSpec(corridor_id="a", road=us25, config=coarse_config)
        catalog.register(spec)
        with pytest.raises(ConfigurationError):
            catalog.register(CorridorSpec(corridor_id="a", road=us25))
        assert "a" in catalog
        assert len(catalog) == 1
        assert [s.corridor_id for s in catalog] == ["a"]

    def test_unknown_corridor_error_carries_ids(self, catalog):
        with pytest.raises(UnknownCorridorError) as excinfo:
            catalog.spec("route-66")
        err = excinfo.value
        assert err.corridor_id == "route-66"
        assert set(err.known_ids) == set(catalog.ids())
        # The typed rejection is an input-validation error, so guard and
        # server layers answer it without new plumbing.
        assert isinstance(err, InputValidationError)

    def test_runtimes_build_lazily_and_once(self, catalog):
        assert catalog.built_ids() == ()
        runtime = catalog.runtime("elm-street")
        assert catalog.built_ids() == ("elm-street",)
        assert catalog.runtime("elm-street") is runtime
        assert catalog.service("elm-street") is runtime.service

    def test_runtime_namespaces_are_per_corridor(self, catalog):
        runtime = catalog.runtime("airport-loop")
        assert runtime.corridor_id == "airport-loop"
        assert runtime.store.name == "engine.store.airport-loop"
        assert runtime.service.name == "cloud.airport-loop"
        assert runtime.service.corridor_id == "airport-loop"
        assert runtime.planner.store is runtime.store

    def test_concurrent_builds_converge_on_one_runtime(self, catalog):
        runtimes = []
        barrier = threading.Barrier(4)

        def build():
            barrier.wait()
            runtimes.append(catalog.runtime("us25"))

        threads = [threading.Thread(target=build) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(runtimes) == 4
        assert all(runtime is runtimes[0] for runtime in runtimes)


class TestCorridorBinding:
    def test_service_serves_its_own_corridor(self, catalog):
        response = catalog.service("elm-street").request(
            PlanRequest(vehicle_id="ev1", depart_s=30.0, corridor_id="elm-street")
        )
        assert response.corridor_id == "elm-street"
        assert response.vehicle_id == "ev1"

    def test_service_rejects_other_corridors_before_counting(self, catalog):
        service = catalog.service("us25")
        req = PlanRequest(vehicle_id="ev1", depart_s=30.0, corridor_id="elm-street")
        with pytest.raises(UnknownCorridorError) as excinfo:
            service.request(req)
        assert excinfo.value.corridor_id == "elm-street"
        assert excinfo.value.known_ids == ("us25",)
        # Rejected before any accounting: the invariant stream is untouched.
        stats = service.stats_snapshot()
        assert stats.requests == 0
        assert stats.cache_hits + stats.cache_misses + stats.errors == 0

    def test_batch_rejections_are_per_item(self, catalog):
        service = catalog.service("us25")
        outcomes = service.request_batch(
            [
                PlanRequest(vehicle_id="ok", depart_s=30.0, corridor_id="us25"),
                PlanRequest(vehicle_id="no", depart_s=30.0, corridor_id="elm-street"),
            ]
        )
        assert outcomes[0].corridor_id == "us25"
        assert isinstance(outcomes[1], UnknownCorridorError)


class TestBuiltinCatalog:
    def test_ships_three_distinct_corridors(self, catalog):
        assert catalog.ids() == (DEFAULT_CORRIDOR_ID, "elm-street", "airport-loop")
        roads = [catalog.spec(cid).road for cid in catalog.ids()]
        assert len({road.length_m for road in roads}) == 3
        # Distinct signal plans: corridor isolation failures would be
        # visible as wrong-corridor plans, not silent no-ops.
        plans = {
            tuple(
                (site.position_m, site.light.red_s, site.light.green_s)
                for site in road.signals
            )
            for road in roads
        }
        assert len(plans) == 3

    def test_specs_have_descriptions_for_the_cli(self, catalog):
        for cid in catalog.ids():
            assert catalog.spec(cid).description


class TestScenarioSpecs:
    def test_unknown_vehicle_rejected_at_construction(self, us25):
        with pytest.raises(UnknownVehicleError) as excinfo:
            CorridorSpec(corridor_id="x", road=us25, vehicle_id="hovercraft")
        assert isinstance(excinfo.value, InputValidationError)

    def test_unknown_scenario_rejected_at_construction(self, us25):
        with pytest.raises(UnknownScenarioError) as excinfo:
            CorridorSpec(corridor_id="x", road=us25, scenario="monsoon")
        assert isinstance(excinfo.value, InputValidationError)

    def test_rejection_happens_before_any_runtime_exists(self, us25, coarse_config):
        # A typo'd spec never reaches the catalog, so no counter, store
        # or planner ever sees it.
        catalog = CorridorCatalog()
        with pytest.raises(UnknownVehicleError):
            catalog.register(
                CorridorSpec(
                    corridor_id="x", road=us25, config=coarse_config,
                    vehicle_id="hovercraft",
                )
            )
        assert len(catalog) == 0
        assert catalog.built_ids() == ()

    def test_resolution_precedence(self, us25):
        default = CorridorSpec(corridor_id="a", road=us25)
        assert default.resolved_vehicle_id() == DEFAULT_VEHICLE_ID
        assert default.resolve_environment() is None

        from_pack = CorridorSpec(corridor_id="b", road=us25, scenario="loaded-van")
        pack = get_scenario("loaded-van")
        assert from_pack.resolved_vehicle_id() == pack.vehicle_id
        assert from_pack.resolve_environment() == pack.environment

        explicit = CorridorSpec(
            corridor_id="c", road=us25, scenario="loaded-van", vehicle_id="city_ev"
        )
        assert explicit.resolved_vehicle_id() == "city_ev"
        assert explicit.resolve_environment() == pack.environment

    def test_built_planner_carries_the_scenario(self, short_road, coarse_config):
        spec = CorridorSpec(
            corridor_id="x",
            road=short_road,
            scenario="cold-morning",
            config=coarse_config,
        )
        planner = spec.build_planner()
        pack = get_scenario("cold-morning")
        assert planner.vehicle == get_vehicle(pack.vehicle_id)
        assert planner.environment == pack.environment
        assert planner.plan(start_time_s=0.0).trip_time_s > 0

    def test_scenario_spec_digests_apart_from_nominal(self, short_road, coarse_config):
        nominal = CorridorSpec(corridor_id="a", road=short_road, config=coarse_config)
        cold = CorridorSpec(
            corridor_id="b", road=short_road, scenario="cold-morning",
            config=coarse_config,
        )
        assert (
            nominal.build_planner().solver.artifacts.digest
            != cold.build_planner().solver.artifacts.digest
        )
