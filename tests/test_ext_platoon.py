"""Downstream-signal platoon experiment (fast config)."""

import numpy as np
import pytest

from repro.experiments import ext_platoon


@pytest.fixture(scope="module")
def result():
    config = ext_platoon.PlatoonConfig(sim_duration_s=1500.0)
    return ext_platoon.run(config)


class TestExtPlatoon:
    def test_phase_axis_covers_cycle(self, result):
        assert result.phase_s[0] < 2.0
        assert result.phase_s[-1] > 58.0

    def test_platoon_prediction_beats_constant_rate(self, result):
        assert result.rmse_platoon < result.rmse_constant

    def test_both_predictions_nonnegative(self, result):
        assert np.all(result.constant_rate >= 0.0)
        assert np.all(result.platoon_aware >= -1e-9)

    def test_queues_empty_late_in_green(self, result):
        late_green = result.phase_s > 45.0
        assert result.observed[late_green].max() < 0.5
        assert result.platoon_aware[late_green].max() < 0.5

    def test_report_renders(self, result):
        text = ext_platoon.report(result)
        assert "signal 2" in text and "RMSE" in text
