"""Multiple controlled EVs sharing one simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment, SpeedLimitZone
from repro.sim.simulator import CorridorSimulator


@pytest.fixture
def open_road():
    return RoadSegment(
        name="open",
        length_m=2000.0,
        zones=[SpeedLimitZone(0.0, 2000.0, v_max_ms=15.0)],
    )


class TestMultiEv:
    def test_two_evs_complete_with_separate_traces(self, open_road):
        sim = CorridorSimulator(open_road, arrivals_s=[], seed=1)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 12.0, vehicle_id="ev-a")
        sim.schedule_ev(depart_s=30.0, target_speed_at=lambda s: 8.0, vehicle_id="ev-b")
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        assert set(result.ev_traces) == {"ev-a", "ev-b"}
        fast = result.ev_traces["ev-a"]
        slow = result.ev_traces["ev-b"]
        assert fast.duration_s < slow.duration_s
        assert fast.positions_m[-1] >= 1999.0
        assert slow.positions_m[-1] >= 1999.0

    def test_departure_order_preserved(self, open_road):
        sim = CorridorSimulator(open_road, arrivals_s=[], seed=2)
        sim.schedule_ev(depart_s=10.0, target_speed_at=lambda s: 10.0, vehicle_id="late")
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 10.0, vehicle_id="early")
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        t_early = result.ev_traces["early"].times_s[0]
        t_late = result.ev_traces["late"].times_s[0]
        assert t_early < t_late

    def test_follower_ev_respects_leader_ev(self, open_road):
        sim = CorridorSimulator(open_road, arrivals_s=[], seed=3)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 5.0, vehicle_id="slow")
        sim.schedule_ev(depart_s=5.0, target_speed_at=lambda s: 15.0, vehicle_id="eager")
        result = sim.run_until_ev_done(hard_limit_s=900.0)
        eager = result.ev_traces["eager"]
        mid = eager.speeds_ms[(eager.positions_m > 500) & (eager.positions_m < 1500)]
        assert np.mean(mid) < 8.0  # boxed in behind the slow leader

    def test_duplicate_id_rejected(self, open_road):
        sim = CorridorSimulator(open_road, arrivals_s=[], seed=4)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 10.0, vehicle_id="ev")
        with pytest.raises(ConfigurationError):
            sim.schedule_ev(depart_s=5.0, target_speed_at=lambda s: 10.0, vehicle_id="ev")

    def test_primary_fields_follow_ev_id(self, open_road):
        sim = CorridorSimulator(open_road, arrivals_s=[], seed=5)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 10.0, vehicle_id="other")
        sim.schedule_ev(depart_s=10.0, target_speed_at=lambda s: 10.0, vehicle_id="ev")
        result = sim.run_until_ev_done(hard_limit_s=600.0)
        np.testing.assert_array_equal(
            result.ev_trace.times_s, result.ev_traces["ev"].times_s
        )

    def test_per_ev_stops_tracked(self, us25):
        sim = CorridorSimulator(us25, arrivals_s=[], seed=6)
        sim.schedule_ev(depart_s=0.0, target_speed_at=lambda s: 14.0, vehicle_id="a")
        sim.schedule_ev(depart_s=20.0, target_speed_at=lambda s: 14.0, vehicle_id="b")
        result = sim.run_until_ev_done(hard_limit_s=1200.0)
        # Both serve the stop sign (one stop each, possibly plus signals).
        assert result.ev_stops_by_id["a"] >= 1
        assert result.ev_stops_by_id["b"] >= 1
