"""Road-segment model: zones, stops, signals, grids, grades."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.route.road import (
    GradeProfile,
    RoadSegment,
    SignalSite,
    SpeedLimitZone,
    StopSign,
)
from repro.signal.light import TrafficLight


def make_road(**overrides):
    kwargs = dict(
        name="r",
        length_m=1000.0,
        zones=[
            SpeedLimitZone(0.0, 400.0, v_max_ms=15.0, v_min_ms=8.0),
            SpeedLimitZone(400.0, 1000.0, v_max_ms=20.0, v_min_ms=10.0),
        ],
        stop_signs=[StopSign(250.0)],
        signals=[
            SignalSite(position_m=700.0, light=TrafficLight(red_s=20.0, green_s=25.0))
        ],
    )
    kwargs.update(overrides)
    return RoadSegment(**kwargs)


class TestZones:
    def test_zone_lookup(self):
        road = make_road()
        assert road.v_max_at(0.0) == 15.0
        assert road.v_max_at(399.9) == 15.0
        assert road.v_max_at(400.0) == 20.0
        assert road.v_max_at(1000.0) == 20.0

    def test_v_min_lookup(self):
        road = make_road()
        assert road.v_min_at(100.0) == 8.0
        assert road.v_min_at(500.0) == 10.0

    def test_zone_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            make_road(
                zones=[
                    SpeedLimitZone(0.0, 300.0, v_max_ms=15.0),
                    SpeedLimitZone(400.0, 1000.0, v_max_ms=20.0),
                ]
            )

    def test_zones_must_cover_whole_road(self):
        with pytest.raises(ConfigurationError):
            make_road(zones=[SpeedLimitZone(0.0, 900.0, v_max_ms=15.0)])

    def test_out_of_range_query_rejected(self):
        road = make_road()
        with pytest.raises(ValueError):
            road.v_max_at(1001.0)

    def test_invalid_zone_limits(self):
        with pytest.raises(ConfigurationError):
            SpeedLimitZone(0.0, 10.0, v_max_ms=0.0)
        with pytest.raises(ConfigurationError):
            SpeedLimitZone(0.0, 10.0, v_max_ms=10.0, v_min_ms=11.0)
        with pytest.raises(ConfigurationError):
            SpeedLimitZone(10.0, 10.0, v_max_ms=10.0)


class TestStopsAndSignals:
    def test_mandatory_stops_include_ends_and_signs(self):
        road = make_road()
        assert road.mandatory_stop_positions() == [0.0, 250.0, 1000.0]

    def test_signals_not_mandatory_stops(self):
        road = make_road()
        assert 700.0 not in road.mandatory_stop_positions()

    def test_signal_positions(self):
        assert make_road().signal_positions() == [700.0]

    def test_off_road_stop_sign_rejected(self):
        with pytest.raises(ConfigurationError):
            make_road(stop_signs=[StopSign(1500.0)])

    def test_off_road_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            make_road(
                signals=[
                    SignalSite(position_m=1200.0, light=TrafficLight(red_s=1, green_s=1))
                ]
            )

    def test_signal_site_validation(self):
        light = TrafficLight(red_s=10, green_s=10)
        with pytest.raises(ConfigurationError):
            SignalSite(position_m=10.0, light=light, turn_ratio=0.0)
        with pytest.raises(ConfigurationError):
            SignalSite(position_m=10.0, light=light, queue_spacing_m=0.0)


class TestGrid:
    def test_grid_contains_special_points(self):
        road = make_road()
        grid = road.grid(30.0)
        for special in (0.0, 250.0, 700.0, 1000.0):
            assert np.any(np.isclose(grid, special))

    def test_grid_strictly_increasing(self):
        grid = make_road().grid(30.0)
        assert np.all(np.diff(grid) > 0)

    def test_grid_step_respected(self):
        grid = make_road().grid(50.0)
        assert np.max(np.diff(grid)) <= 50.0 + 1e-9

    def test_grid_rejects_bad_step(self):
        with pytest.raises(ValueError):
            make_road().grid(0.0)


class TestGradeProfile:
    def test_flat(self):
        assert GradeProfile.flat().at(123.0) == 0.0

    def test_interpolation(self):
        profile = GradeProfile([0.0, 100.0], [0.0, 0.1])
        assert profile.at(50.0) == pytest.approx(0.05)

    def test_clamping_beyond_ends(self):
        profile = GradeProfile([10.0, 20.0], [0.02, 0.04])
        assert profile.at(0.0) == pytest.approx(0.02)
        assert profile.at(100.0) == pytest.approx(0.04)

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            GradeProfile([10.0, 5.0], [0.0, 0.0])

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            GradeProfile([1.0, 2.0], [0.0])

    def test_road_grade_at(self):
        road = make_road(grade=GradeProfile([0.0, 1000.0], [0.0, 0.1]))
        assert road.grade_at(500.0) == pytest.approx(0.05)


class TestUs25:
    def test_paper_geometry(self, us25):
        assert us25.length_m == 4200.0
        assert [s.position_m for s in us25.stop_signs] == [490.0]
        assert us25.signal_positions() == [1820.0, 3460.0]

    def test_paper_queue_parameters(self, us25):
        for site in us25.signals:
            assert site.queue_spacing_m == pytest.approx(8.5)
            assert site.turn_ratio == pytest.approx(0.7636)

    def test_signal_cycles(self, us25):
        for site in us25.signals:
            assert site.light.red_s == 30.0
            assert site.light.green_s == 30.0

    def test_custom_offsets(self):
        from repro.route.us25 import us25_greenville_segment

        road = us25_greenville_segment(signal_offsets_s=(5.0, 25.0))
        assert road.signals[0].light.offset_s == 5.0
        assert road.signals[1].light.offset_s == 25.0

    def test_wrong_offset_count_rejected(self):
        from repro.route.us25 import us25_greenville_segment

        with pytest.raises(ValueError):
            us25_greenville_segment(signal_offsets_s=(1.0,))
