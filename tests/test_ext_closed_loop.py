"""Closed-loop extension experiment (fast config)."""

import pytest

from repro.experiments import ext_closed_loop


@pytest.fixture(scope="module")
def result():
    config = ext_closed_loop.ClosedLoopConfig(
        traffic_levels_vph=(200.0,), departures=(300.0,)
    )
    return ext_closed_loop.run(config)


class TestExtClosedLoop:
    def test_one_row_per_traffic_level(self, result):
        assert len(result.rows) == 1

    def test_replans_applied(self, result):
        assert result.rows[0][5] > 0

    def test_closed_loop_not_worse_on_stops(self, result):
        _, _, _, open_stops, closed_stops, _ = result.rows[0]
        assert closed_stops <= open_stops

    def test_energies_positive(self, result):
        assert result.rows[0][1] > 0
        assert result.rows[0][2] > 0

    def test_report_renders(self, result):
        text = ext_closed_loop.report(result)
        assert "closed-loop" in text
